package analysis

import (
	"go/ast"
	"go/types"
)

// Overlap enforces the communication-overlap discipline of the split halo
// exchange (§4.3.1 as refined by the overlapped-exchange design): the
// Begin/Finish pair exists so interior compute can run while halo messages
// fly, and a Finish that immediately follows its Begin exposes the full
// exchange latency — the code pays the split's bookkeeping and hides
// nothing. It flags:
//
//   - chained completions e.Begin(...).Finish(), and
//   - a Pending assigned from Begin and completed by the very next
//     statement of the same block (p := e.Begin(...); p.Finish()).
//
// Deliberately quiesced rounds — ablation reference paths, bootstrap fills
// where no independent compute exists — carry //cadyvet:quiesce <why> on
// (or above) the Finish call.
var Overlap = &Analyzer{
	Name: "overlap",
	Doc:  "flag halo-exchange Finish calls that immediately follow their Begin, hiding no compute",
}

func init() { Overlap.Run = runOverlap }

// isExchangerBegin reports whether the call statically resolves to
// topo.Exchanger.Begin.
func isExchangerBegin(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	return fn != nil && fn.Name() == "Begin" && methodOn(fn, "topo", "Exchanger")
}

// isPendingFinish reports whether the call statically resolves to
// topo.Pending.Finish.
func isPendingFinish(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	return fn != nil && fn.Name() == "Finish" && methodOn(fn, "topo", "Pending")
}

func runOverlap(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// Chained form: e.Begin(...).Finish().
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !isPendingFinish(p.Info, n) {
					return true
				}
				if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok && isExchangerBegin(p.Info, inner) {
					p.report(Overlap.Name, n.Pos(), dirQuiesce,
						"Finish chained onto Begin completes the exchange with no interior compute overlapped; split them or waive with //cadyvet:quiesce <why>")
				}
			case *ast.BlockStmt:
				reportAdjacentFinish(p, n.List)
			case *ast.CaseClause:
				reportAdjacentFinish(p, n.Body)
			case *ast.CommClause:
				reportAdjacentFinish(p, n.Body)
			}
			return true
		})
	}
}

// reportAdjacentFinish flags p.Finish() statements whose immediately
// preceding statement assigned p from Exchanger.Begin.
func reportAdjacentFinish(p *Pass, stmts []ast.Stmt) {
	for i := 1; i < len(stmts); i++ {
		fin, ok := stmts[i].(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := fin.X.(*ast.CallExpr)
		if !ok || !isPendingFinish(p.Info, call) {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			continue
		}
		asg, ok := stmts[i-1].(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			continue
		}
		lhs, ok := asg.Lhs[0].(*ast.Ident)
		if !ok || objectOf(p.Info, lhs) == nil || objectOf(p.Info, lhs) != objectOf(p.Info, recv) {
			continue
		}
		rhs, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok || !isExchangerBegin(p.Info, rhs) {
			continue
		}
		p.report(Overlap.Name, fin.Pos(), dirQuiesce,
			"Finish immediately follows its Begin with no interior compute between them; move independent work inside the window or waive with //cadyvet:quiesce <why>")
	}
}

// objectOf resolves an identifier to its object via either the Defs (for
// `:=` definitions) or Uses map.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
