package analysis

import (
	"encoding/json"
	"os"
)

// Allocation statuses of a function fact, ordered by badness.
const (
	// AllocClean: the function and everything it statically calls perform no
	// heap allocation.
	AllocClean = "clean"
	// AllocUnknown: the function contains a call that cannot be resolved
	// statically (interface dispatch, function value) or whose target has no
	// fact; it cannot be proven alloc-free.
	AllocUnknown = "unknown"
	// AllocHeap: the function (or a callee) provably allocates.
	AllocHeap = "allocates"
)

// FuncFact is the exported per-function summary. Facts are self-contained
// (reasons embed the full transitive explanation), so only the facts of
// direct imports are needed when analyzing a package — which is exactly what
// cmd/go's vet fact plumbing provides.
type FuncFact struct {
	// Alloc is the allocation status (AllocClean/AllocUnknown/AllocHeap).
	Alloc string `json:"alloc"`
	// Reason explains a non-clean status, e.g.
	// "make at internal/comm/p2p.go:92" or "calls (*T).M, which allocates (…)".
	Reason string `json:"reason,omitempty"`
	// Collective reports that the function (transitively) executes a
	// symmetric communication operation: a comm.Comm collective or a
	// topo.Exchanger halo exchange. commsym flags rank-conditional calls to
	// such functions.
	Collective bool `json:"coll,omitempty"`
	// NeedsLock names the receiver field whose mutex the caller must hold
	// when calling this method (//cadyvet:locked, receiver-relative).
	// guardedby checks call sites — including cross-package ones — against
	// the caller's held-lock set.
	NeedsLock string `json:"needslock,omitempty"`
	// Blessed marks a function that implements the raw crash-safe commit
	// protocol (//cadyvet:blessed): raw filesystem mutations inside it are
	// the protocol, and calls to it satisfy crashsafe.
	Blessed bool `json:"blessed,omitempty"`
	// RawWrite explains a raw (unblessed) durable-path mutation the function
	// transitively performs, e.g. "os.Rename at checkpoint/store.go:88".
	// Empty for functions that only write through blessed helpers.
	RawWrite string `json:"rawwrite,omitempty"`
	// Waits reports that the function (transitively) blocks on a shutdown
	// signal: a channel receive, a select, ranging over a channel, or a
	// sync.WaitGroup.Wait. goleak requires it of goroutines launched in
	// long-lived components.
	Waits bool `json:"waits,omitempty"`
}

// PkgFacts is the fact file content for one package.
type PkgFacts struct {
	Funcs map[string]FuncFact `json:"funcs"`
}

// FactStore resolves function facts across package boundaries.
type FactStore struct {
	imported map[string]PkgFacts // package path → facts
	// Current receives the facts computed for the package under analysis.
	Current PkgFacts
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		imported: make(map[string]PkgFacts),
		Current:  PkgFacts{Funcs: make(map[string]FuncFact)},
	}
}

// AddPackage registers the facts of a dependency.
func (s *FactStore) AddPackage(path string, f PkgFacts) { s.imported[path] = f }

// LoadPackageFile reads a dependency's vetx fact file. Missing or malformed
// files register an empty fact set (their functions then resolve to "no
// fact", i.e. unknown) — analysis must degrade, not fail.
func (s *FactStore) LoadPackageFile(path, file string) {
	b, err := os.ReadFile(file)
	if err != nil {
		return
	}
	var f PkgFacts
	if json.Unmarshal(b, &f) != nil || f.Funcs == nil {
		return
	}
	s.imported[path] = f
}

// Imported looks up the fact for a function of a dependency by package path
// and funcKey.
func (s *FactStore) Imported(pkgPath, key string) (FuncFact, bool) {
	f, ok := s.imported[pkgPath].Funcs[key]
	return f, ok
}

// Put records a fact for the package under analysis.
func (s *FactStore) Put(key string, f FuncFact) { s.Current.Funcs[key] = f }

// WriteFile serializes the current package's facts (the vetx output of the
// unitchecker protocol).
func (s *FactStore) WriteFile(file string) error {
	b, err := json.Marshal(s.Current)
	if err != nil {
		return err
	}
	return os.WriteFile(file, b, 0o666)
}
