package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder enforces deterministic reduction and serialization order: Go map
// iteration order is randomized per run, so a `for … range m` over a map
// whose body
//
//   - accumulates into a floating-point (or complex, or string) variable
//     declared outside the loop — float addition is not associative, so the
//     result differs bitwise between runs, breaking the reproducibility the
//     checkpoint/restart tests rely on;
//   - performs communication (a collective, halo exchange, send — or any
//     call that transitively does) — ranks would issue messages in differing
//     orders; or
//   - serializes (writes to an io.Writer via Write*/Fprint*/Encode) — byte
//     output differs between runs, breaking content-addressed checkpoints
//     and golden files
//
// must iterate in a sorted order instead (collect keys, sort, then loop).
// //cadyvet:unordered on the range statement waives a finding with
// justification (e.g. when the body only fills another map).
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "flag map-ordered loops feeding float accumulation, communication or serialization",
}

func init() { DetOrder.Run = runDetOrder }

// commMethods: point-to-point operations also order-sensitive across ranks.
var commP2PMethods = map[string]bool{
	"Send": true, "Isend": true, "Recv": true, "RecvInto": true, "Irecv": true,
}

// serializeFuncs: package-level functions whose call inside a map-ordered
// loop emits bytes in iteration order.
var serializeFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// serializeMethods: methods that append to a stream or encoder.
var serializeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

func runDetOrder(p *Pass) {
	for _, fd := range p.enclosingFuncs() {
		if fd.decl.Body == nil {
			continue
		}
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(p, rng)
			return true
		})
	}
}

func checkMapRange(p *Pass, rng *ast.RangeStmt) {
	body := rng.Body
	report := func(pos token.Pos, format string, args ...any) {
		// The waiver lives on the range statement (it covers the whole loop).
		if d := p.ann.at(p.Fset.Position(rng.Pos()), dirUnordered); d != nil {
			d.used = true
			return
		}
		p.report(DetOrder.Name, pos, dirUnordered, format, args...)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAccumulation(p, rng, n, report)
		case *ast.CallExpr:
			checkOrderedCall(p, n, report)
		}
		return true
	})
}

// rangeVarObjs returns the key/value loop variable objects of a range
// statement.
func rangeVarObjs(p *Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

// checkAccumulation flags `acc op= expr` (and `acc = acc op expr`) where acc
// is a float/complex/string accumulator declared outside the loop body.
// Writes to a location indexed by a loop variable (m[k] /= d, out[k] += v)
// touch each element once and are order-insensitive, so they are exempt.
func checkAccumulation(p *Pass, rng *ast.RangeStmt, n *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	rangeVars := rangeVarObjs(p, rng)
	indexedByRangeVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(m ast.Node) bool {
			ix, ok := m.(*ast.IndexExpr)
			if !ok {
				return !found
			}
			ast.Inspect(ix.Index, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && rangeVars[obj] {
						found = true
					}
				}
				return !found
			})
			return !found
		})
		return found
	}
	orderSensitive := func(t types.Type) string {
		if t == nil {
			return ""
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok {
			return ""
		}
		switch {
		case b.Info()&types.IsFloat != 0:
			return "floating-point"
		case b.Info()&types.IsComplex != 0:
			return "complex"
		case b.Info()&types.IsString != 0:
			return "string"
		}
		return ""
	}
	declaredOutside := func(e ast.Expr) bool {
		root := e
		for {
			switch x := ast.Unparen(root).(type) {
			case *ast.SelectorExpr:
				root = x.X
				continue
			case *ast.IndexExpr:
				root = x.X
				continue
			case *ast.StarExpr:
				root = x.X
				continue
			}
			break
		}
		id, ok := ast.Unparen(root).(*ast.Ident)
		if !ok {
			return true // conservatively: complex roots assumed outer
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Body.Pos() || obj.Pos() > rng.Body.End()
	}

	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		kind := orderSensitive(p.Info.TypeOf(n.Lhs[0]))
		if kind != "" && declaredOutside(n.Lhs[0]) && !indexedByRangeVar(n.Lhs[0]) {
			report(n.Pos(), "%s accumulation in map-iteration order is not reproducible: iterate over sorted keys instead", kind)
		}
	case token.ASSIGN:
		// x = x + v / x = x * v …
		for i := range n.Lhs {
			if i >= len(n.Rhs) {
				break
			}
			be, ok := ast.Unparen(n.Rhs[i]).(*ast.BinaryExpr)
			if !ok {
				continue
			}
			switch be.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
			default:
				continue
			}
			kind := orderSensitive(p.Info.TypeOf(n.Lhs[i]))
			if kind == "" || !declaredOutside(n.Lhs[i]) || indexedByRangeVar(n.Lhs[i]) {
				continue
			}
			if sameExprText(n.Lhs[i], be.X) || sameExprText(n.Lhs[i], be.Y) {
				report(n.Pos(), "%s accumulation in map-iteration order is not reproducible: iterate over sorted keys instead", kind)
			}
		}
	}
}

// checkOrderedCall flags communication and serialization calls whose order
// follows the map iteration.
func checkOrderedCall(p *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	fn := staticCallee(p.Info, call)
	if fn != nil {
		if isCollectiveFunc(fn) ||
			(methodOn(fn, "comm", "Comm") && commP2PMethods[fn.Name()]) {
			report(call.Pos(), "communication (%s) in map-iteration order diverges between runs and ranks: iterate over sorted keys", fn.Name())
			return
		}
		// Transitively collective helpers, via facts.
		if pkg := fn.Pkg(); pkg != nil {
			var coll bool
			if p.Pkg != nil && pkg == p.Pkg {
				coll = p.Facts.Current.Funcs[funcKey(fn)].Collective
			} else if f, ok := p.Facts.Imported(pkg.Path(), funcKey(fn)); ok {
				coll = f.Collective
			}
			if coll {
				report(call.Pos(), "communication (%s, transitively) in map-iteration order diverges between runs and ranks: iterate over sorted keys", fn.Name())
				return
			}
		}
		if fn.Pkg() != nil && fn.Pkg().Name() == "fmt" && serializeFuncs[fn.Name()] {
			report(call.Pos(), "serialization (fmt.%s) in map-iteration order is not reproducible: iterate over sorted keys", fn.Name())
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && serializeMethods[fn.Name()] {
			report(call.Pos(), "serialization (%s) in map-iteration order is not reproducible: iterate over sorted keys", fn.Name())
			return
		}
		return
	}
	// Interface-dispatched writers (io.Writer.Write etc.).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s2, ok := p.Info.Selections[sel]; ok && s2.Kind() == types.MethodVal &&
			isInterface(s2.Recv()) && serializeMethods[sel.Sel.Name] {
			report(call.Pos(), "serialization (%s) in map-iteration order is not reproducible: iterate over sorted keys", sel.Sel.Name)
		}
	}
}

// sameExprText compares two expressions structurally by their printed form
// (sufficient for accumulator matching like `x.f = x.f + v`).
func sameExprText(a, b ast.Expr) bool {
	return exprString(a) == exprString(b)
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	}
	return "?"
}
