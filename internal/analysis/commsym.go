package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CommSym enforces the paper's collective-symmetry discipline (eq. 8): every
// rank must execute the same sequence of collectives and halo exchanges per
// step. It flags:
//
//   - calls to comm.Comm collectives (Barrier, Bcast, Allreduce, Reduce,
//     Allgather, Alltoall, Exscan, Split, …) and topo.Exchanger exchanges
//     (Begin, Exchange) — or to any function that transitively performs one
//     (tracked via facts across packages) — that are control-dependent on a
//     rank-valued expression (Comm.Rank(), Topology.Cx/Cy/Cz, and local
//     variables derived from them). A rank that skips (or doubles) a
//     collective its peers execute deadlocks the step; at vet time this is
//     the collective-divergence class that otherwise only surfaces as a hang
//     on a 1024-rank run.
//   - Exchanger.Begin calls whose *Pending result is discarded or never
//     completed with Finish in the same function (and does not escape):
//     an unpaired deep-halo exchange leaves receives undrained, breaking the
//     paired-exchange structure of §4.3.1.
//
// //cadyvet:rankuniform (on the call, its controlling statement, or the
// enclosing function) waives a symmetry finding with justification;
// //cadyvet:allow waives a pairing finding.
var CommSym = &Analyzer{
	Name: "commsym",
	Doc:  "flag rank-conditional collectives and unpaired halo-exchange Begin calls",
}

func init() { CommSym.Run = runCommSym }

// collectiveMethods are the symmetric operations of comm.Comm: every rank of
// the communicator must enter them in the same program order.
var collectiveMethods = map[string]bool{
	"Barrier": true, "Bcast": true,
	"Allreduce": true, "AllreduceRD": true, "AllreduceRing": true,
	"AllreduceScalar": true, "Allgather": true, "Alltoall": true,
	"Exscan": true, "Reduce": true, "Split": true,
}

// exchangerMethods are the symmetric operations of topo.Exchanger (the halo
// exchange is pairwise but issued in identical program order on all ranks).
var exchangerMethods = map[string]bool{"Begin": true, "Exchange": true}

// isCollectiveFunc reports whether fn directly is a symmetric communication
// operation.
func isCollectiveFunc(fn *types.Func) bool {
	if methodOn(fn, "comm", "Comm") && collectiveMethods[fn.Name()] {
		return true
	}
	if methodOn(fn, "topo", "Exchanger") && exchangerMethods[fn.Name()] {
		return true
	}
	return false
}

// isRankSource reports whether expr directly yields a rank-valued quantity:
// a Comm.Rank() call or a Topology.Cx/Cy/Cz coordinate.
func (cs *csState) isRankSource(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		if fn := staticCallee(cs.p.Info, e); fn != nil {
			if fn.Name() == "Rank" && methodOn(fn, "comm", "Comm") {
				return true
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := cs.p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			name := e.Sel.Name
			if name == "Cx" || name == "Cy" || name == "Cz" {
				if n := namedRecv(sel.Recv()); n != nil && n.Obj().Pkg() != nil &&
					n.Obj().Pkg().Name() == "topo" && n.Obj().Name() == "Topology" {
					return true
				}
			}
		}
	case *ast.Ident:
		// The comm package's own rank field (collective implementations are
		// rank-aware by construction; their p2p bodies are not collectives,
		// so this only matters if one nests a collective under a rank test).
		if cs.p.Pkg.Name() == "comm" && e.Name == "rank" {
			return true
		}
	}
	return false
}

type csFunc struct {
	fd         funcDecl
	collective bool // direct collective call in the body
	calls      []*types.Func
}

type csState struct {
	p     *Pass
	decls map[*types.Func]*csFunc
	memo  map[*types.Func]bool
	stack map[*types.Func]bool
}

func runCommSym(p *Pass) {
	cs := &csState{
		p:     p,
		decls: make(map[*types.Func]*csFunc),
		memo:  make(map[*types.Func]bool),
		stack: make(map[*types.Func]bool),
	}
	fds := p.enclosingFuncs()
	for i := range fds {
		fd := fds[i]
		cf := &csFunc{fd: fd}
		if fd.decl.Body != nil {
			ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := staticCallee(p.Info, call); fn != nil {
					if isCollectiveFunc(fn) {
						cf.collective = true
					} else {
						cf.calls = append(cf.calls, fn)
					}
				}
				return true
			})
		}
		cs.decls[fd.obj] = cf
	}

	// Export the Collective fact (merged into the allocfree facts).
	for _, fd := range fds {
		key := funcKey(fd.obj)
		fact := p.Facts.Current.Funcs[key]
		fact.Collective = cs.resolve(fd.obj)
		p.Facts.Put(key, fact)
	}

	// Enforce rank-uniform control flow and Begin/Finish pairing.
	for _, fd := range fds {
		if fd.decl.Body == nil {
			continue
		}
		if d := p.funcDirective(fd.decl, dirRankUniform); d != nil {
			d.used = true
			continue
		}
		w := &csWalker{cs: cs, fn: fd}
		w.taint()
		w.stmts(fd.decl.Body.List, nil)
		cs.checkPairing(fd)
	}
}

// resolve reports whether fn transitively performs a collective.
func (cs *csState) resolve(fn *types.Func) bool {
	fn = fn.Origin()
	if v, ok := cs.memo[fn]; ok {
		return v
	}
	cf, local := cs.decls[fn]
	if !local {
		if pkg := fn.Pkg(); pkg != nil {
			if f, ok := cs.p.Facts.Imported(pkg.Path(), funcKey(fn)); ok {
				return f.Collective
			}
		}
		return false
	}
	if cs.stack[fn] {
		return false
	}
	cs.stack[fn] = true
	defer delete(cs.stack, fn)
	v := cf.collective
	for _, callee := range cf.calls {
		if v {
			break
		}
		v = cs.resolve(callee)
	}
	cs.memo[fn] = v
	return v
}

// csWalker walks one function body tracking rank-dependent control regions.
type csWalker struct {
	cs      *csState
	fn      funcDecl
	tainted map[types.Object]bool
	// ctrl is the stack of positions of the statements that made the current
	// region rank-dependent (for rankuniform waivers placed on the branch).
	ctrl []token.Pos
}

// taint computes the local variables derived from rank-valued expressions
// (simple flow-insensitive fixpoint over assignments).
func (w *csWalker) taint() {
	w.tainted = make(map[types.Object]bool)
	info := w.cs.p.Info
	for changed := true; changed; {
		changed = false
		ast.Inspect(w.fn.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						id, ok := n.Lhs[i].(*ast.Ident)
						if !ok {
							continue
						}
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil && !w.tainted[obj] && w.exprTainted(n.Rhs[i]) {
							w.tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if i < len(n.Values) {
						obj := info.Defs[id]
						if obj != nil && !w.tainted[obj] && w.exprTainted(n.Values[i]) {
							w.tainted[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
}

// exprTainted reports whether the expression involves a rank-valued source
// or a tainted variable.
func (w *csWalker) exprTainted(expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if w.cs.isRankSource(e) {
				found = true
				return false
			}
			if id, ok := e.(*ast.Ident); ok {
				if obj := w.cs.p.Info.Uses[id]; obj != nil && w.tainted[obj] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// stmts walks a statement list. ctrl carries the rank-dependent control
// stack; a terminating rank-conditional branch extends the region over the
// rest of the list (the `if rank != 0 { return }` early-exit pattern).
func (w *csWalker) stmts(list []ast.Stmt, ctrl []token.Pos) {
	for i, st := range list {
		w.stmt(st, ctrl)
		if ifst, ok := st.(*ast.IfStmt); ok && w.ifTainted(ifst) && ifTerminates(ifst) {
			rest := append(append([]token.Pos(nil), ctrl...), ifst.Pos())
			for _, later := range list[i+1:] {
				w.stmt(later, rest)
			}
			return
		}
	}
}

// ifTainted reports whether the if condition (of this statement or a
// chained else-if) is rank-dependent.
func (w *csWalker) ifTainted(n *ast.IfStmt) bool {
	if w.exprTainted(n.Cond) {
		return true
	}
	if elif, ok := n.Else.(*ast.IfStmt); ok {
		return w.ifTainted(elif)
	}
	return false
}

// ifTerminates reports whether any branch of the if ends control flow.
func ifTerminates(n *ast.IfStmt) bool {
	if blockTerminates(n.Body.List) {
		return true
	}
	switch e := n.Else.(type) {
	case *ast.BlockStmt:
		return blockTerminates(e.List)
	case *ast.IfStmt:
		return ifTerminates(e)
	}
	return false
}

func blockTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

func (w *csWalker) stmt(st ast.Stmt, ctrl []token.Pos) {
	switch n := st.(type) {
	case *ast.IfStmt:
		w.exprs(n.Cond, ctrl)
		inner := ctrl
		if w.exprTainted(n.Cond) {
			inner = append(append([]token.Pos(nil), ctrl...), n.Pos())
		}
		w.stmts(n.Body.List, inner)
		if n.Else != nil {
			w.stmt(n.Else, inner)
		}
	case *ast.ForStmt:
		inner := ctrl
		if n.Cond != nil && w.exprTainted(n.Cond) {
			inner = append(append([]token.Pos(nil), ctrl...), n.Pos())
		}
		if n.Init != nil {
			w.stmt(n.Init, ctrl)
		}
		if n.Cond != nil {
			w.exprs(n.Cond, ctrl)
		}
		if n.Post != nil {
			w.stmt(n.Post, inner)
		}
		w.stmts(n.Body.List, inner)
	case *ast.RangeStmt:
		inner := ctrl
		if w.exprTainted(n.X) {
			inner = append(append([]token.Pos(nil), ctrl...), n.Pos())
		}
		w.exprs(n.X, ctrl)
		w.stmts(n.Body.List, inner)
	case *ast.SwitchStmt:
		inner := ctrl
		if (n.Tag != nil && w.exprTainted(n.Tag)) || (n.Init != nil && w.initTainted(n.Init)) {
			inner = append(append([]token.Pos(nil), ctrl...), n.Pos())
		}
		if n.Tag != nil {
			w.exprs(n.Tag, ctrl)
		}
		for _, c := range n.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseCtrl := inner
			if len(caseCtrl) == len(ctrl) { // tag untainted: a tainted case guard still taints
				for _, e := range cc.List {
					if w.exprTainted(e) {
						caseCtrl = append(append([]token.Pos(nil), ctrl...), n.Pos())
						break
					}
				}
			}
			w.stmts(cc.Body, caseCtrl)
		}
	case *ast.BlockStmt:
		w.stmts(n.List, ctrl)
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, ctrl)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, ctrl)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(n.Stmt, ctrl)
	case *ast.GoStmt:
		w.exprs(n.Call, ctrl)
	case *ast.DeferStmt:
		w.exprs(n.Call, ctrl)
	case *ast.ExprStmt:
		w.exprs(n.X, ctrl)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			w.exprs(e, ctrl)
		}
		for _, e := range n.Lhs {
			w.exprs(e, ctrl)
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			w.exprs(e, ctrl)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.exprs(v, ctrl)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.exprs(n.Chan, ctrl)
		w.exprs(n.Value, ctrl)
	case *ast.IncDecStmt:
		w.exprs(n.X, ctrl)
	}
}

func (w *csWalker) initTainted(st ast.Stmt) bool {
	if as, ok := st.(*ast.AssignStmt); ok {
		for _, r := range as.Rhs {
			if w.exprTainted(r) {
				return true
			}
		}
	}
	return false
}

// exprs scans an expression tree for collective calls made under a
// rank-dependent control region.
func (w *csWalker) exprs(expr ast.Expr, ctrl []token.Pos) {
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(w.cs.p.Info, call)
		if fn == nil {
			return true
		}
		direct := isCollectiveFunc(fn)
		if !direct && !w.cs.resolve(fn) {
			return true
		}
		if len(ctrl) == 0 {
			return true
		}
		// Waiver may sit on the call or on any controlling statement.
		p := w.cs.p
		for _, cp := range ctrl {
			if d := p.ann.at(p.Fset.Position(cp), dirRankUniform); d != nil {
				d.used = true
				return true
			}
		}
		kind := "collective"
		if !direct {
			kind = "collective-bearing call to"
		}
		p.report(CommSym.Name, call.Pos(), dirRankUniform,
			"%s %s is control-dependent on a rank-valued condition (%s): every rank must execute the same collective sequence (eq. 8)",
			kind, fn.Name(), w.cs.pos(ctrl[len(ctrl)-1]))
		return true
	})
}

func (cs *csState) pos(p token.Pos) string {
	position := cs.p.Fset.Position(p)
	return position.String()
}

// checkPairing flags Exchanger.Begin calls whose Pending is never completed.
func (cs *csState) checkPairing(fd funcDecl) {
	info := cs.p.Info
	body := fd.decl.Body

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || fn.Name() != "Begin" || !methodOn(fn, "topo", "Exchanger") {
			return true
		}
		switch parent := cs.beginUse(body, call); parent {
		case "chained", "assigned-completed":
			// ok
		case "discarded":
			cs.p.report(CommSym.Name, call.Pos(), dirAllow,
				"Exchanger.Begin result discarded: the Pending exchange is never completed with Finish (unpaired deep-halo exchange)")
		case "incomplete":
			cs.p.report(CommSym.Name, call.Pos(), dirAllow,
				"Exchanger.Begin result is never completed with Finish on any path in %s (unpaired deep-halo exchange)", fd.obj.Name())
		}
		return true
	})
}

// beginUse classifies how one Begin call's result is used within body:
// "chained" (.Finish() immediately), "discarded" (ExprStmt), or whether the
// assigned variable is completed/escapes ("assigned-completed") or not
// ("incomplete").
func (cs *csState) beginUse(body *ast.BlockStmt, begin *ast.CallExpr) string {
	info := cs.p.Info
	verdict := "chained" // default: used in a larger expression (e.g. e.Begin(...).Finish())
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(n.X) == begin {
				verdict = "discarded"
				return false
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if ast.Unparen(r) != begin || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					verdict = "assigned-completed" // stored through a field/index: escapes
					return false
				}
				if id.Name == "_" {
					verdict = "discarded"
					return false
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					return false
				}
				if cs.objCompleted(body, obj, begin) {
					verdict = "assigned-completed"
				} else {
					verdict = "incomplete"
				}
				return false
			}
		}
		return true
	})
	return verdict
}

// objCompleted reports whether obj has a Finish call or escapes after the
// Begin call.
func (cs *csState) objCompleted(body *ast.BlockStmt, obj types.Object, begin *ast.CallExpr) bool {
	info := cs.p.Info
	done := false
	ast.Inspect(body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n == begin {
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == obj {
					done = true // any method call on the Pending (Finish, or a helper)
					return false
				}
			}
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
					done = true // escapes into a call
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && info.Uses[id] == obj {
					done = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && info.Uses[id] == obj {
					done = true // copied elsewhere: assume completed there
					return false
				}
			}
		}
		return true
	})
	return done
}
