package analysis

// Fixture-based analyzer tests, in the style of x/tools' analysistest: each
// directory under testdata/src is one package; fixture files carry
// `// want "regexp"` comments on the lines where a diagnostic is expected.
// Fixture packages may import each other by bare path (resolved inside
// testdata/src), which exercises the cross-package fact flow; they must not
// import anything else (no stdlib — fixtures are typechecked from source
// without export data).

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureLoader typechecks testdata packages recursively and computes their
// facts, mimicking the per-package fact propagation of the vet protocol.
type fixtureLoader struct {
	t     *testing.T
	root  string // testdata/src
	fset  *token.FileSet
	pkgs  map[string]*types.Package
	facts *FactStore
	// files of the package under test (for want extraction)
	files map[string][]*ast.File
	// diags collected per package path
	diags map[string][]*Diagnostic
}

func newFixtureLoader(t *testing.T) *fixtureLoader {
	return &fixtureLoader{
		t:     t,
		root:  filepath.Join("testdata", "src"),
		fset:  token.NewFileSet(),
		pkgs:  make(map[string]*types.Package),
		facts: NewFactStore(),
		files: make(map[string][]*ast.File),
		diags: make(map[string][]*Diagnostic),
	}
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q not found: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tc := types.Config{Importer: l}
	info := newInfo()
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	l.files[path] = files

	// Run the suite over the dependency too, so its facts feed importers —
	// exactly like a VetxOnly run in the real protocol.
	depFacts := NewFactStore()
	for p, f := range l.facts.imported {
		depFacts.AddPackage(p, f)
	}
	pass := NewPass(l.fset, files, pkg, info, depFacts)
	l.diags[path] = pass.RunAll(All())
	l.facts.AddPackage(path, depFacts.Current)
	return pkg, nil
}

// want describes one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// A `// want "re"` comment expects a diagnostic on its own line; a
// `// want-above "re"` comment expects one on the previous line (used when
// the diagnostic position is itself a comment line, e.g. a malformed
// directive, leaving no room for a same-line want).
var wantRE = regexp.MustCompile(`// want(-above)? (.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				if m[1] == "-above" {
					pos.Line--
				}
				args := wantArgRE.FindAllStringSubmatch(m[2], -1)
				if len(args) == 0 {
					t.Errorf("%s: malformed want comment: %s", pos, c.Text)
					continue
				}
				for _, a := range args {
					pat := strings.ReplaceAll(a[1], `\"`, `"`)
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, a[1], err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

// runFixture analyzes one fixture package and checks its diagnostics against
// the // want comments of every file in the package.
func runFixture(t *testing.T, path string) {
	t.Helper()
	l := newFixtureLoader(t)
	if _, err := l.Import(path); err != nil {
		t.Fatalf("loading fixture %q: %v", path, err)
	}
	diags := l.diags[path]
	wants := parseWants(t, l.fset, l.files[path])

	used := make([]bool, len(diags))
	for _, w := range wants {
		for i, d := range diags {
			if used[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				used[i] = true
				w.matched = true
				break
			}
		}
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
}

func TestAllocFreeFixture(t *testing.T)        { runFixture(t, "allocfree") }
func TestAllocFreeCrossPkg(t *testing.T)       { runFixture(t, "allocfree_x") }
func TestCommSymFixture(t *testing.T)          { runFixture(t, "commsym") }
func TestCommSymTransitive(t *testing.T)       { runFixture(t, "commsym_x") }
func TestDetOrderFixture(t *testing.T)         { runFixture(t, "detorder") }
func TestDirectiveHygieneFixture(t *testing.T) { runFixture(t, "directives") }
func TestOverlapFixture(t *testing.T)          { runFixture(t, "overlap") }
func TestGuardedByFixture(t *testing.T)        { runFixture(t, "guardedby") }
func TestGuardedByCrossPkg(t *testing.T)       { runFixture(t, "guardedby_x") }
func TestCrashSafeFixture(t *testing.T)        { runFixture(t, "crashsafe") }
func TestCrashSafeCrossPkg(t *testing.T)       { runFixture(t, "crashsafe_x") }
func TestGoLeakFixture(t *testing.T)           { runFixture(t, "goleak") }
func TestGoLeakCrossPkg(t *testing.T)          { runFixture(t, "goleak_x") }

// TestFixtureDepsClean ensures the shared fixture stand-ins for comm/topo are
// themselves quiet (they model the library, not findings).
func TestFixtureDepsClean(t *testing.T) {
	for _, path := range []string{"comm", "topo", "kernels", "sync", "os", "time", "atomic", "gstore", "diskio", "pump"} {
		l := newFixtureLoader(t)
		if _, err := l.Import(path); err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		for _, d := range l.diags[path] {
			t.Errorf("%s: unexpected diagnostic in dep fixture %s: %s", d.Pos, path, d.Message)
		}
	}
}

// TestFactsExported checks the shape of the published facts for a fixture.
func TestFactsExported(t *testing.T) {
	l := newFixtureLoader(t)
	if _, err := l.Import("kernels"); err != nil {
		t.Fatal(err)
	}
	facts := l.facts.imported["kernels"]
	var keys []string
	for k := range facts.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	get := func(name string) FuncFact {
		for k, f := range facts.Funcs {
			if strings.HasSuffix(k, "."+name) {
				return f
			}
		}
		t.Fatalf("no fact for %s (have %v)", name, keys)
		return FuncFact{}
	}
	if f := get("Clean"); f.Alloc != AllocClean {
		t.Errorf("kernels.Clean fact = %+v, want clean", f)
	}
	if f := get("Alloc"); f.Alloc != AllocHeap {
		t.Errorf("kernels.Alloc fact = %+v, want allocates", f)
	}
	if f := get("CallsAlloc"); f.Alloc != AllocHeap {
		t.Errorf("kernels.CallsAlloc fact = %+v, want allocates (transitive)", f)
	}
}
