package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AllocFree enforces //cadyvet:allocfree: annotated functions — and,
// transitively, everything they statically call — must not allocate on the
// heap. It flags, inside checked code:
//
//   - make, new, append
//   - slice and map composite literals, and address-taken composite literals
//   - function literals (closures) and go statements
//   - string([]byte/[]rune) and []byte/[]rune(string) conversions,
//     string concatenation
//   - interface boxing: concrete values converted, assigned, passed or
//     returned as interfaces; bound-method values
//   - implicit []T allocation of non-ellipsis variadic calls
//   - calls to functions that allocate (via per-function facts, so the check
//     crosses package boundaries) and calls that cannot be resolved
//     statically (interface dispatch, function values)
//
// Statement lists that provably end in panic are failure paths and are
// exempt (the canonical `if bad { panic(fmt.Sprintf(…)) }` guard), as are
// panic arguments themselves. Bodyless declarations (assembly intrinsics)
// are assumed clean. //cadyvet:allow waives one finding with justification;
// //cadyvet:assumeclean waives a whole function.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "enforce //cadyvet:allocfree functions perform no heap allocation, transitively",
}

func init() { AllocFree.Run = runAllocFree }

type afEvent struct {
	pos  token.Pos
	desc string
}

type afCall struct {
	pos token.Pos
	fn  *types.Func
}

type afFunc struct {
	fd      funcDecl
	assume  *directive
	checked *directive // the //cadyvet:allocfree marker, if present
	events  []afEvent
	calls   []afCall
	dynamic []afEvent // unresolvable calls
}

type afState struct {
	p     *Pass
	decls map[*types.Func]*afFunc
	memo  map[*types.Func]FuncFact
	stack map[*types.Func]bool
}

func runAllocFree(p *Pass) {
	s := &afState{
		p:     p,
		decls: make(map[*types.Func]*afFunc),
		memo:  make(map[*types.Func]FuncFact),
		stack: make(map[*types.Func]bool),
	}
	fds := p.enclosingFuncs()
	for i := range fds {
		fd := fds[i]
		af := s.collect(fd)
		s.decls[fd.obj] = af
	}
	// Export a fact for every function of the package.
	for _, fd := range fds {
		fact := s.resolve(fd.obj)
		existing := p.Facts.Current.Funcs[funcKey(fd.obj)]
		existing.Alloc = fact.Alloc
		existing.Reason = fact.Reason
		p.Facts.Put(funcKey(fd.obj), existing)
	}
	// Enforce annotated functions.
	for _, fd := range fds {
		af := s.decls[fd.obj]
		if af.checked == nil {
			continue
		}
		af.checked.used = true
		if af.assume != nil {
			p.report(AllocFree.Name, fd.decl.Pos(), "",
				"function %s is annotated both cadyvet:allocfree and cadyvet:assumeclean", fd.obj.Name())
			continue
		}
		for _, ev := range af.events {
			p.report(AllocFree.Name, ev.pos, dirAllow, "heap allocation in alloc-free function %s: %s", fd.obj.Name(), ev.desc)
		}
		for _, dyn := range af.dynamic {
			p.report(AllocFree.Name, dyn.pos, dirAllow, "unverifiable call in alloc-free function %s: %s", fd.obj.Name(), dyn.desc)
		}
		for _, call := range af.calls {
			fact := s.resolve(call.fn)
			switch fact.Alloc {
			case AllocHeap:
				p.report(AllocFree.Name, call.pos, dirAllow, "call in alloc-free function %s to %s, which allocates: %s",
					fd.obj.Name(), call.fn.Name(), fact.Reason)
			case AllocUnknown:
				p.report(AllocFree.Name, call.pos, dirAllow, "call in alloc-free function %s to %s, which cannot be proven alloc-free: %s",
					fd.obj.Name(), call.fn.Name(), fact.Reason)
			}
		}
	}
}

// resolve computes the allocation fact of fn, following static calls through
// local declarations and imported facts. Cycles resolve optimistically (a
// recursion with no allocation events is clean).
func (s *afState) resolve(fn *types.Func) FuncFact {
	fn = fn.Origin()
	if f, ok := s.memo[fn]; ok {
		return f
	}
	af, local := s.decls[fn]
	if !local {
		return s.external(fn)
	}
	if af.assume != nil {
		af.assume.used = true
		f := FuncFact{Alloc: AllocClean}
		s.memo[fn] = f
		return f
	}
	if af.fd.decl.Body == nil {
		// Assembly or linkname-backed: assumed not to allocate.
		f := FuncFact{Alloc: AllocClean}
		s.memo[fn] = f
		return f
	}
	if s.stack[fn] {
		return FuncFact{Alloc: AllocClean} // cycle: optimistic, not memoized
	}
	s.stack[fn] = true
	defer delete(s.stack, fn)

	fact := FuncFact{Alloc: AllocClean}
	if len(af.events) > 0 {
		fact = FuncFact{Alloc: AllocHeap, Reason: fmt.Sprintf("%s at %s", af.events[0].desc, s.pos(af.events[0].pos))}
	} else {
		var unknown *FuncFact
		for _, dyn := range af.dynamic {
			u := FuncFact{Alloc: AllocUnknown, Reason: fmt.Sprintf("%s at %s", dyn.desc, s.pos(dyn.pos))}
			unknown = &u
			break
		}
		for _, call := range af.calls {
			cf := s.resolve(call.fn)
			if cf.Alloc == AllocHeap {
				fact = FuncFact{Alloc: AllocHeap, Reason: chain(call.fn, "allocates", cf.Reason)}
				break
			}
			if cf.Alloc == AllocUnknown && unknown == nil {
				u := FuncFact{Alloc: AllocUnknown, Reason: chain(call.fn, "is unverifiable", cf.Reason)}
				unknown = &u
			}
		}
		if fact.Alloc == AllocClean && unknown != nil {
			fact = *unknown
		}
	}
	s.memo[fn] = fact
	return fact
}

// external resolves a function outside the package under analysis from the
// imported fact tables.
func (s *afState) external(fn *types.Func) FuncFact {
	pkg := fn.Pkg()
	if pkg == nil {
		return FuncFact{Alloc: AllocClean} // universe scope (error.Error reaches here only via dynamic paths)
	}
	if f, ok := s.p.Facts.Imported(pkg.Path(), funcKey(fn)); ok {
		return f
	}
	return FuncFact{Alloc: AllocUnknown, Reason: fmt.Sprintf("no analysis facts for %s", funcKey(fn))}
}

// chain composes a transitive reason, bounded so deep call chains stay
// readable.
func chain(fn *types.Func, what, reason string) string {
	if len(reason) > 160 {
		reason = reason[:157] + "…"
	}
	return fmt.Sprintf("%s %s (%s)", fn.Name(), what, reason)
}

// pos renders a short source position (pkgdir/file:line).
func (s *afState) pos(p token.Pos) string {
	position := s.p.Fset.Position(p)
	dir := filepath.Base(filepath.Dir(position.Filename))
	return fmt.Sprintf("%s/%s:%d", dir, filepath.Base(position.Filename), position.Line)
}

// collect gathers the local allocation events, static calls and dynamic
// calls of one function body, honoring //cadyvet:allow waivers and skipping
// provable failure paths.
func (s *afState) collect(fd funcDecl) *afFunc {
	af := &afFunc{fd: fd}
	af.assume = s.p.funcDirective(fd.decl, dirAssumeClean)
	af.checked = s.p.funcDirective(fd.decl, dirAllocFree)
	if fd.decl.Body == nil {
		return af
	}
	info := s.p.Info
	sig, _ := fd.obj.Type().(*types.Signature)

	// Pre-pass: mark statements on failure paths (lists ending in panic).
	cold := map[ast.Node]bool{}
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		}
		if list != nil && terminatesInPanic(list) {
			for _, st := range list {
				cold[st] = true
			}
		}
		return true
	})

	event := func(pos token.Pos, desc string) {
		if d := s.p.ann.at(s.p.Fset.Position(pos), dirAllow); d != nil {
			d.used = true
			return
		}
		af.events = append(af.events, afEvent{pos, desc})
	}
	dynamic := func(pos token.Pos, desc string) {
		if d := s.p.ann.at(s.p.Fset.Position(pos), dirAllow); d != nil {
			d.used = true
			return
		}
		af.dynamic = append(af.dynamic, afEvent{pos, desc})
	}

	callFuns := map[ast.Expr]bool{} // selector exprs used as call targets

	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		if st, ok := n.(ast.Stmt); ok && cold[st] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			event(n.Pos(), "function literal (closure)")
			return false // body is only reachable through a dynamic call

		case *ast.GoStmt:
			event(n.Pos(), "go statement (goroutine launch)")
			return true

		case *ast.CallExpr:
			return s.call(af, n, callFuns, event, dynamic)

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					event(n.Pos(), "address-taken composite literal")
				}
			}

		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				event(n.Pos(), "slice literal")
			case *types.Map:
				event(n.Pos(), "map literal")
			}

		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !callFuns[n] {
				event(n.Pos(), "bound-method value (closure)")
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				event(n.Pos(), "string concatenation")
			}

		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && isString(info.TypeOf(n.Lhs[0])) {
				event(n.Pos(), "string concatenation")
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					s.boxing(n.Rhs[i], info.TypeOf(n.Lhs[i]), event)
				}
			}

		case *ast.ValueSpec:
			if n.Type != nil {
				t := info.TypeOf(n.Type)
				for _, v := range n.Values {
					s.boxing(v, t, event)
				}
			}

		case *ast.ReturnStmt:
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					s.boxing(r, sig.Results().At(i).Type(), event)
				}
			}

		case *ast.RangeStmt:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Signature); ok {
				dynamic(n.Pos(), "range over function value")
			}
		}
		return true
	})
	return af
}

// call classifies one call expression. Returns whether to descend into the
// call's children.
func (s *afState) call(af *afFunc, call *ast.CallExpr,
	callFuns map[ast.Expr]bool, event, dynamic func(token.Pos, string)) bool {
	info := s.p.Info
	fun := ast.Unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		callFuns[sel] = true
	}

	// Conversion T(x)?
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		switch {
		case isString(dst) && isByteOrRuneSlice(src):
			event(call.Pos(), "[]byte/[]rune→string conversion")
		case isByteOrRuneSlice(dst) && isString(src):
			event(call.Pos(), "string→[]byte/[]rune conversion")
		case isInterface(dst) && src != nil && !isInterface(src) && !isUntypedNil(src):
			event(call.Pos(), "conversion boxes value into interface")
		}
		return true
	}

	// Builtin?
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				event(call.Pos(), "make")
			case "new":
				event(call.Pos(), "new")
			case "append":
				event(call.Pos(), "append may grow its backing array")
			case "panic":
				return false // failure path: the panic argument never runs in steady state
			}
			return true
		}
	}

	// Arguments boxed into interface parameters.
	if sig, ok := info.TypeOf(fun).(*types.Signature); ok && sig != nil {
		s.boxedArgs(sig, call, event)
	}

	if fn := staticCallee(info, call); fn != nil {
		// An //cadyvet:allow on the call line waives the callee's status for
		// this caller — including in the caller's own exported fact (the
		// justification vouches for the call site, so the waiver must not
		// re-surface one level up the chain).
		if d := s.p.ann.at(s.p.Fset.Position(call.Pos()), dirAllow); d != nil {
			d.used = true
			return true
		}
		af.calls = append(af.calls, afCall{call.Pos(), fn})
		return true
	}

	// Dynamic: interface dispatch or a function value.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s2, ok := info.Selections[sel]; ok && s2.Kind() == types.MethodVal && isInterface(s2.Recv()) {
			dynamic(call.Pos(), fmt.Sprintf("interface method call %s", sel.Sel.Name))
			return true
		}
	}
	dynamic(call.Pos(), "call through function value")
	return true
}

// boxedArgs flags concrete arguments passed to interface parameters.
func (s *afState) boxedArgs(sig *types.Signature, call *ast.CallExpr, event func(token.Pos, string)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through
			}
			sl, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		s.boxing(arg, pt, event)
	}
	// A non-ellipsis call of a variadic function materializes a []T.
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		event(call.Pos(), "implicit slice for variadic call")
	}
}

// boxing flags expr if assigning it to target type boxes a concrete value
// into an interface.
func (s *afState) boxing(expr ast.Expr, target types.Type, event func(token.Pos, string)) {
	if target == nil || !isInterface(target) {
		return
	}
	src := s.p.Info.TypeOf(expr)
	if src == nil || isInterface(src) || isUntypedNil(src) {
		return
	}
	event(expr.Pos(), "value boxes into interface")
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32
}
