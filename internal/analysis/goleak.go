package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak enforces goroutine-lifecycle hygiene. In functions annotated
// //cadyvet:component (the constructors and handlers of long-lived
// components: server worker pools, fleet probers/watchers, ensemble
// fan-out), every goroutine launched must have a shutdown path: its body —
// transitively, through static calls via the Waits fact — must block on a
// channel receive (<-ch, which covers <-ctx.Done()), a select, ranging over
// a channel, or a sync.WaitGroup.Wait. A goroutine with none of these runs
// until process exit and accumulates across restarts of the component.
//
// Module-wide, independent of annotations, it flags the two classic
// timer-leak idioms:
//
//   - time.After inside a loop: each iteration allocates a timer that is
//     not collected until it fires, unbounded on a busy loop — hoist a
//     time.NewTimer and reuse it;
//   - time.Tick anywhere: the returned ticker can never be stopped.
//
// //cadyvet:shortlived on a go statement waives the shutdown-path
// requirement for a goroutine that provably terminates on its own;
// //cadyvet:allow waives a timer finding.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "require shutdown paths for goroutines of //cadyvet:component functions; flag time.After-in-loop and time.Tick",
}

func init() { GoLeak.Run = runGoLeak }

type glFunc struct {
	fd        funcDecl
	component *directive
	waits     bool          // body directly contains a blocking shutdown construct
	calls     []*types.Func // static calls outside go statements and literals
}

type glState struct {
	p     *Pass
	decls map[*types.Func]*glFunc
	memo  map[*types.Func]bool
	stack map[*types.Func]bool
}

func runGoLeak(p *Pass) {
	s := &glState{
		p:     p,
		decls: make(map[*types.Func]*glFunc),
		memo:  make(map[*types.Func]bool),
		stack: make(map[*types.Func]bool),
	}
	fds := p.enclosingFuncs()
	for i := range fds {
		fd := fds[i]
		gf := &glFunc{fd: fd, component: p.funcDirective(fd.decl, dirComponent)}
		if fd.decl.Body != nil {
			gf.waits, gf.calls = s.scanWaits(fd.decl.Body)
		}
		s.decls[fd.obj] = gf
	}

	for _, fd := range fds {
		key := funcKey(fd.obj)
		fact := p.Facts.Current.Funcs[key]
		fact.Waits = s.resolve(fd.obj)
		p.Facts.Put(key, fact)
	}

	for _, fd := range fds {
		if fd.decl.Body == nil {
			continue
		}
		gf := s.decls[fd.obj]
		if gf.component != nil {
			gf.component.used = true
			s.checkComponent(fd)
		}
		s.checkTimers(fd)
	}
}

// scanWaits reports whether a body directly blocks on a shutdown construct,
// plus its synchronous static calls. Function literals and go statements are
// skipped: spawning a waiting goroutine is not itself waiting.
func (s *glState) scanWaits(body *ast.BlockStmt) (waits bool, calls []*types.Func) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				waits = true
			}
		case *ast.SelectStmt:
			waits = true
		case *ast.RangeStmt:
			if t := s.p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					waits = true
				}
			}
		case *ast.CallExpr:
			if fn := staticCallee(s.p.Info, n); fn != nil {
				if fn.Name() == "Wait" && methodOn(fn, "sync", "WaitGroup") {
					waits = true
				} else {
					calls = append(calls, fn)
				}
			}
		}
		return true
	})
	return waits, calls
}

// resolve reports whether fn transitively blocks on a shutdown construct.
func (s *glState) resolve(fn *types.Func) bool {
	fn = fn.Origin()
	if v, ok := s.memo[fn]; ok {
		return v
	}
	gf, local := s.decls[fn]
	if !local {
		if pkg := fn.Pkg(); pkg != nil {
			if f, ok := s.p.Facts.Imported(pkg.Path(), funcKey(fn)); ok {
				return f.Waits
			}
		}
		return false
	}
	if s.stack[fn] {
		return false
	}
	s.stack[fn] = true
	defer delete(s.stack, fn)
	v := gf.waits
	for _, callee := range gf.calls {
		if v {
			break
		}
		v = s.resolve(callee)
	}
	s.memo[fn] = v
	return v
}

// checkComponent requires a shutdown path of every goroutine launched
// anywhere in a component function's body (including inside its literals).
func (s *glState) checkComponent(fd funcDecl) {
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		ok = false
		switch fun := ast.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			w, calls := s.scanWaits(fun.Body)
			ok = w
			for _, c := range calls {
				if ok {
					break
				}
				ok = s.resolve(c)
			}
		default:
			if fn := staticCallee(s.p.Info, g.Call); fn != nil {
				ok = s.resolve(fn)
			}
		}
		if !ok {
			s.p.report(GoLeak.Name, g.Pos(), dirShortLived,
				"goroutine launched in long-lived component %s has no shutdown path: its body must (transitively) receive on a channel/ctx.Done, select, range a channel, or WaitGroup.Wait", fd.obj.Name())
		}
		return true
	})
}

// checkTimers flags time.Tick anywhere and time.After under a loop.
func (s *glState) checkTimers(fd funcDecl) {
	reported := map[token.Pos]bool{}
	timeCall := func(n ast.Node, name string) *ast.CallExpr {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return nil
		}
		fn := staticCallee(s.p.Info, call)
		if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Name() != "time" {
			return nil
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return nil // time.Time.After, not the package function
		}
		return call
	}
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		if call := timeCall(n, "Tick"); call != nil {
			s.p.report(GoLeak.Name, call.Pos(), dirAllow,
				"time.Tick leaks its ticker (it can never be stopped): use time.NewTicker with a deferred Stop")
			return true
		}
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		ast.Inspect(body, func(inner ast.Node) bool {
			call := timeCall(inner, "After")
			if call == nil || reported[call.Pos()] {
				return true
			}
			reported[call.Pos()] = true
			s.p.report(GoLeak.Name, call.Pos(), dirAllow,
				"time.After inside a loop allocates a timer per iteration that is only collected when it fires: hoist a time.NewTimer and reuse it")
			return true
		})
		return true
	})
}
