// Package analysis is a self-contained (standard-library-only) static
// analysis suite for this module, in the style of golang.org/x/tools
// go/analysis. It provides seven domain-specific analyzers that turn the
// module's runtime invariants into build-time guarantees:
//
//   - allocfree: functions annotated //cadyvet:allocfree (and, transitively,
//     everything they call) must not allocate on the heap. This promotes the
//     PR-1 zero-allocation kernel invariant — which makes the Θ cost model of
//     §5.3 predictive — from an AllocsPerRun benchmark assertion to a vet-time
//     guarantee.
//   - commsym: collective operations (comm.Comm's Barrier/Bcast/Allreduce/…
//     and topo.Exchanger's Begin/Exchange) must not be control-dependent on
//     rank-valued expressions. Every rank must execute the same sequence of Ĉ
//     and F̃ collectives per step (eq. 8); a rank-conditional collective is the
//     deadlock class that only surfaces at scale. Also: every Exchanger.Begin
//     must have its Pending completed.
//   - detorder: iteration over Go maps is randomized; a map-ordered loop that
//     feeds floating-point accumulation, communication, or serialization
//     breaks bitwise reproducibility across runs and ranks.
//   - overlap: a topo.Exchanger.Begin whose Pending is Finished immediately
//     (chained, or by the very next statement) pays the split exchange's
//     bookkeeping while hiding zero compute; independent interior work
//     belongs between the two calls, or the round must justify quiescing.
//   - guardedby: struct fields annotated //cadyvet:guardedby <mu> may only
//     be touched while the named sibling mutex is held (tracked
//     flow-sensitively per function; //cadyvet:locked declares a
//     caller-holds-lock contract that propagates to call sites via facts).
//     Also: a Lock with no Unlock on some return path, and a guarded field
//     whose address additionally flows into sync/atomic.
//   - crashsafe: in packages annotated //cadyvet:persistence, durable-path
//     mutations (os.Create/Rename/WriteFile/OpenFile) must flow through the
//     //cadyvet:blessed commit helpers (fsync + rename + dir fsync); temp
//     files must be created in the destination directory; Sync/Close/Rename
//     errors on write paths must be checked.
//   - goleak: goroutines launched inside //cadyvet:component long-lived
//     functions must (transitively) block on a shutdown signal — a channel
//     receive, select, channel range, or WaitGroup.Wait. Module-wide:
//     time.After inside a loop and time.Tick anywhere.
//
// The suite is wired into `go vet -vettool` by cmd/cadyvet (see unit.go for
// the protocol) and is runnable on isolated fixture packages in tests (see
// atest.go).
//
// # Annotations
//
// cadyvet understands fourteen comment directives. Every waiver form requires
// a written justification after the directive word; an empty justification is
// itself a diagnostic.
//
//	//cadyvet:allocfree
//	    On a function's doc comment: enforce that the function, and
//	    transitively every function it calls, performs no heap allocation.
//	//cadyvet:assumeclean <why>
//	    On a function's doc comment: treat the function as alloc-free
//	    without inspecting its body (an axiom for code with a cold or
//	    configuration-gated allocating path).
//	//cadyvet:allow <why>
//	    On (or on the line above) an allocating statement inside checked
//	    code: waive that one finding.
//	//cadyvet:rankuniform <why>
//	    On (or above) a collective call, or on the controlling if/for/switch
//	    statement, or on the enclosing function's doc comment: assert the
//	    rank-dependent condition evaluates identically on every rank.
//	//cadyvet:unordered <why>
//	    On (or above) a `for … range` statement over a map: assert the loop
//	    is insensitive to iteration order.
//	//cadyvet:quiesce <why>
//	    On (or above) a Pending.Finish call that immediately follows its
//	    Begin: assert the round deliberately exposes the full exchange
//	    latency (ablation reference path, bootstrap fill with no
//	    independent compute, …).
//	//cadyvet:guardedby <mu>
//	    On a struct field: the field may only be read while <mu> (a sibling
//	    mutex field of the same struct) is held (RLock suffices), and only
//	    written while it is write-held.
//	//cadyvet:locked <recv>.<mu>
//	    On a function's doc comment: the caller holds the named lock for
//	    the whole call. Seeds the held set at entry and, for methods,
//	    exports a fact so call sites are checked against the caller's
//	    held-lock set across package boundaries.
//	//cadyvet:unshared <why>
//	    On (or above) a guarded-field access, or on the enclosing
//	    function's doc comment: assert the object is not yet shared
//	    (under construction, or exclusively owned) so no lock is needed.
//	//cadyvet:persistence <what>
//	    Anywhere in a package (conventionally the package doc): mark the
//	    package a persistence surface; crashsafe checks its write paths.
//	//cadyvet:blessed <why>
//	    On a function's doc comment: the function IS the crash-safe commit
//	    protocol (temp + fsync + rename + dir fsync); raw filesystem calls
//	    inside it are exempt and calls to it are the sanctioned route.
//	//cadyvet:volatile <why>
//	    On (or above) a raw filesystem mutation in a persistence package:
//	    assert the target is not durable state (scratch, best-effort).
//	//cadyvet:component
//	    On a function's doc comment: the function belongs to a long-lived
//	    component; every goroutine it launches must have a shutdown path.
//	//cadyvet:shortlived <why>
//	    On (or above) a go statement in a component function: assert the
//	    goroutine provably terminates on its own (bounded work).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full cadyvet suite in execution order. The order matters:
// allocfree and commsym publish function facts that detorder consumes, and
// the later analyzers merge their fact fields into the same records.
func All() []*Analyzer {
	return []*Analyzer{AllocFree, CommSym, DetOrder, Overlap, GuardedBy, CrashSafe, GoLeak}
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass holds one type-checked package plus the fact environment, and
// collects diagnostics. The same Pass value is handed to every analyzer in
// turn (they are independent except for the shared fact tables).
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Facts carries imported per-function summaries and receives the ones
	// computed for this package.
	Facts *FactStore

	ann   *annotations
	diags []*Diagnostic
}

// NewPass assembles a pass and parses the cadyvet annotations of its files.
func NewPass(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore) *Pass {
	p := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, Facts: facts}
	p.ann = parseAnnotations(fset, files)
	return p
}

// RunAll runs every analyzer, then reports malformed (justification-free)
// directives, and returns the diagnostics sorted by position.
func (p *Pass) RunAll(azs []*Analyzer) []*Diagnostic {
	for _, az := range azs {
		az.Run(p)
	}
	p.reportBadDirectives()
	sort.Slice(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return p.diags[i].Message < p.diags[j].Message
	})
	return p.diags
}

// report records a finding unless a matching waiver directive covers pos.
// waiver is the directive kind that can suppress this finding ("" = not
// suppressible).
func (p *Pass) report(az string, pos token.Pos, waiver string, format string, args ...any) {
	position := p.Fset.Position(pos)
	if waiver != "" {
		if d := p.ann.at(position, waiver); d != nil {
			d.used = true
			return
		}
	}
	p.diags = append(p.diags, &Diagnostic{Pos: position, Analyzer: az, Message: fmt.Sprintf(format, args...)})
}

// --- annotations -----------------------------------------------------------

const directivePrefix = "//cadyvet:"

// Directive kinds.
const (
	dirAllocFree   = "allocfree"
	dirAssumeClean = "assumeclean"
	dirAllow       = "allow"
	dirRankUniform = "rankuniform"
	dirUnordered   = "unordered"
	dirQuiesce     = "quiesce"
	dirGuardedBy   = "guardedby"
	dirLocked      = "locked"
	dirUnshared    = "unshared"
	dirPersistence = "persistence"
	dirBlessed     = "blessed"
	dirVolatile    = "volatile"
	dirComponent   = "component"
	dirShortLived  = "shortlived"
)

type directive struct {
	kind   string
	reason string
	pos    token.Position
	used   bool
}

// annotations indexes every cadyvet directive of a package by file and line.
type annotations struct {
	// byLine[filename][line] lists the directives whose comment sits on that
	// line; a directive on its own comment line also covers the next line,
	// so both "above" and "trailing" placements work.
	byLine map[string]map[int][]*directive
	all    []*directive
}

func parseAnnotations(fset *token.FileSet, files []*ast.File) *annotations {
	a := &annotations{byLine: make(map[string]map[int][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				kind, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Slash)
				d := &directive{kind: kind, reason: strings.TrimSpace(reason), pos: pos}
				a.all = append(a.all, d)
				lines := a.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					a.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				// A comment occupying its own line annotates the following
				// line of code as well.
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	return a
}

// at returns a directive of the given kind covering the position, or nil.
func (a *annotations) at(pos token.Position, kind string) *directive {
	for _, d := range a.byLine[pos.Filename][pos.Line] {
		if d.kind == kind {
			return d
		}
	}
	return nil
}

// funcDirective returns a directive of the given kind in decl's doc comment
// (or sitting on the lines immediately preceding the declaration), or nil.
func (p *Pass) funcDirective(decl *ast.FuncDecl, kind string) *directive {
	pos := p.Fset.Position(decl.Pos())
	if d := p.ann.at(pos, kind); d != nil {
		return d
	}
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			cpos := p.Fset.Position(c.Slash)
			if d := p.ann.at(cpos, kind); d != nil && d.pos == cpos {
				return d
			}
		}
	}
	return nil
}

// reportBadDirectives flags waiver directives without a written reason and
// unknown directive words. (Unused directives are tolerated: an annotation
// may be kept for documentation after the code it excused was fixed.)
func (p *Pass) reportBadDirectives() {
	seen := map[*directive]bool{}
	for _, d := range p.ann.all {
		if seen[d] {
			continue
		}
		seen[d] = true
		switch d.kind {
		case dirAllocFree, dirComponent:
			// Markers, no reason needed.
		case dirGuardedBy, dirLocked:
			if d.reason == "" {
				p.diags = append(p.diags, &Diagnostic{
					Pos:      d.pos,
					Analyzer: "cadyvet",
					Message:  fmt.Sprintf("cadyvet:%s directive requires the guard (mutex) name", d.kind),
				})
			}
		case dirAssumeClean, dirAllow, dirRankUniform, dirUnordered, dirQuiesce,
			dirUnshared, dirPersistence, dirBlessed, dirVolatile, dirShortLived:
			if d.reason == "" {
				p.diags = append(p.diags, &Diagnostic{
					Pos:      d.pos,
					Analyzer: "cadyvet",
					Message:  fmt.Sprintf("cadyvet:%s directive requires a written justification", d.kind),
				})
			}
		default:
			p.diags = append(p.diags, &Diagnostic{
				Pos:      d.pos,
				Analyzer: "cadyvet",
				Message:  fmt.Sprintf("unknown cadyvet directive %q", d.kind),
			})
		}
	}
}

// --- shared type utilities -------------------------------------------------

// funcKey returns the stable cross-package key of a function object: the
// generic origin's fully qualified name, e.g.
// "cadycore/internal/comm.Sum" or "(*cadycore/internal/comm.Comm).Send".
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// staticCallee resolves the statically known callee of a call, if any.
// Interface method calls, calls through function values and builtins return
// nil (the bool result reports whether the call is a builtin or conversion,
// which the caller may treat as non-allocating or handle specially).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if sel.Kind() == types.MethodVal && isInterface(sel.Recv()) {
					return nil // dynamic dispatch
				}
				return f
			}
			return nil
		}
		// Package-qualified function: pkg.F.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// namedRecv returns the named receiver type of a method-value selection,
// unwrapping pointers, or nil.
func namedRecv(t types.Type) *types.Named {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// methodOn reports whether fn is a method whose receiver's named type is
// declared in a package named pkgName with type name typeName. Matching by
// package *name* (not path) keeps the analyzers testable on fixture packages
// while being unambiguous in this module.
func methodOn(fn *types.Func, pkgName, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedRecv(sig.Recv().Type())
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// terminatesInPanic reports whether a statement list provably ends in a call
// to panic. Such lists are failure paths: allocations on them (typically
// building a panic message) do not run in steady state.
func terminatesInPanic(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	last, ok := stmts[len(stmts)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := last.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// enclosingFuncs returns, for every function declaration in the files, the
// declaration paired with its *types.Func object. Declarations without type
// information (blank funcs in broken code) are skipped.
func (p *Pass) enclosingFuncs() []funcDecl {
	var out []funcDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, funcDecl{decl: fd, obj: obj})
		}
	}
	return out
}

type funcDecl struct {
	decl *ast.FuncDecl
	obj  *types.Func
}
