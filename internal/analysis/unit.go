package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"runtime"
	"strings"
)

// This file implements the cmd/go vet tool protocol ("unitchecker" mode), so
// that the suite runs under
//
//	go vet -vettool=$(which cadyvet) ./...
//
// cmd/go invokes the tool once per package as
//
//	cadyvet [flags] $OBJDIR/vet.cfg
//
// after building the package's dependencies, and additionally probes it with
// -V=full (for the build cache tool ID) and -flags (for flag registration).
// The vet.cfg JSON (Config below) names the package's sources, the export
// data of its dependencies, and the "vetx" fact files produced by the tool's
// earlier runs over the direct imports.

// Config mirrors cmd/go/internal/work.vetConfig.
type Config struct {
	ID           string // e.g. "fmt [fmt.test]"
	Compiler     string // gc or gccgo
	Dir          string // package directory
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string // import path as written → canonical path
	PackageFile   map[string]string // canonical path → export data file
	Standard      map[string]bool   // canonical path → is stdlib

	PackageVetx map[string]string // canonical path → fact file of direct import
	VetxOnly    bool              // facts only; no diagnostics wanted
	VetxOutput  string            // where to write this package's facts

	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Main implements the cadyvet command. It terminates the process.
func Main() {
	progname := "cadyvet"
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// The build cache hashes this line as the tool's identity.
			fmt.Printf("%s version devel cadyvet-suite buildID=%s\n", progname, toolID())
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			// No tool-specific flags.
			fmt.Println("[]")
			os.Exit(0)
		case arg == "-list" || arg == "--list":
			// Self-describing lint logs: print the enabled analyzers.
			for _, az := range All() {
				fmt.Printf("%-10s %s\n", az.Name, az.Doc)
			}
			os.Exit(0)
		case arg == "help" || arg == "-h" || arg == "-help" || arg == "--help":
			fmt.Fprintf(os.Stderr, "%s: static analysis suite for the cadycore module\n\n", progname)
			fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(command -v %s) ./...\n\nAnalyzers:\n", progname)
			for _, az := range All() {
				fmt.Fprintf(os.Stderr, "  %-10s %s\n", az.Name, az.Doc)
			}
			os.Exit(0)
		}
	}
	args := nonFlagArgs(os.Args[1:])
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: expected one *.cfg argument (run via go vet -vettool)\n", progname)
		os.Exit(2)
	}
	diags, err := runUnit(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// toolID derives a content hash of the running executable, so that the go
// command's build cache invalidates vet results when the tool changes.
func toolID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := fnvHash{}
	h.init()
	buf := make([]byte, 64<<10)
	for {
		n, err := f.Read(buf)
		h.write(buf[:n])
		if err != nil {
			break
		}
	}
	return h.hex()
}

// fnvHash is a 128-bit FNV-1a, enough for cache identity without importing
// crypto (two independent 64-bit lanes over alternating bytes).
type fnvHash struct{ a, b uint64 }

func (h *fnvHash) init() { h.a, h.b = 14695981039346656037, 14695981039346656037^0x9e3779b97f4a7c15 }
func (h *fnvHash) write(p []byte) {
	for i, c := range p {
		if i&1 == 0 {
			h.a = (h.a ^ uint64(c)) * 1099511628211
		} else {
			h.b = (h.b ^ uint64(c)) * 1099511628211
		}
	}
}
func (h *fnvHash) hex() string { return fmt.Sprintf("%016x%016x", h.a, h.b) }

func nonFlagArgs(args []string) []string {
	var out []string
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			out = append(out, a)
		}
	}
	return out
}

// runUnit analyzes the single package described by the vet.cfg file.
func runUnit(cfgFile string) ([]*Diagnostic, error) {
	b, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(b, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return finishSilently(&cfg)
			}
			return nil, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheckUnit(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return finishSilently(&cfg)
		}
		return nil, err
	}

	facts := NewFactStore()
	for path, file := range cfg.PackageVetx {
		facts.LoadPackageFile(path, file)
	}

	pass := NewPass(fset, files, pkg, info, facts)
	diags := pass.RunAll(All())

	if cfg.VetxOutput != "" {
		if err := facts.WriteFile(cfg.VetxOutput); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	return diags, nil
}

// finishSilently honors SucceedOnTypecheckFailure: emit an empty fact file so
// dependents still find one, and report nothing.
func finishSilently(cfg *Config) ([]*Diagnostic, error) {
	if cfg.VetxOutput != "" {
		_ = NewFactStore().WriteFile(cfg.VetxOutput)
	}
	return nil, nil
}

// typecheckUnit type-checks the package against its compiled dependencies'
// export data, exactly as the compiler saw them.
func typecheckUnit(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// The export-data importer receives canonical paths and loads the .a/.x
	// file recorded in the config.
	exp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return exp.Import(path)
	})

	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	tc := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, goarch),
		GoVersion: version.Lang(cfg.GoVersion),
		Error:     func(error) {}, // collect all; first error returned below
	}
	info := newInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// newInfo allocates the full set of type-info maps the analyzers use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
