package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedBy enforces //cadyvet:guardedby: a struct field annotated
//
//	mu   sync.Mutex
//	jobs map[string]*Job //cadyvet:guardedby mu
//
// may only be read while the named sibling mutex is held on the same base
// value (s.mu for an access to s.jobs), and only written while it is
// write-held (RLock admits reads only). Lock state is tracked
// flow-sensitively per function: mu.Lock()/mu.Unlock() pairs, defer
// mu.Unlock(), branch merging by intersection. Functions whose caller holds
// the lock declare it with //cadyvet:locked <recv>.<mu>; the contract seeds
// the held set at entry and is exported as a fact, so call sites — including
// cross-package ones — are themselves checked to hold the lock. The analyzer
// additionally flags:
//
//   - a Lock (or RLock) with no matching Unlock on some return path —
//     the caller-visible deadlock class;
//   - a guarded field whose address is passed to sync/atomic: mixing
//     atomic and mutex access means neither discipline protects it.
//
// Goroutine bodies and function literals never inherit the launcher's held
// set (a goroutine does not hold its parent's lock); a literal that runs
// under the lock by construction may carry its own //cadyvet:locked line.
// //cadyvet:unshared (statement or function level) waives an access on an
// object that is not yet shared; //cadyvet:allow waives a leak or
// mixed-atomic finding.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "enforce //cadyvet:guardedby fields are only touched with the named mutex held",
}

func init() { GuardedBy.Run = runGuardedBy }

type lockMode int

const (
	lockRead  lockMode = iota + 1 // RLock held: reads only
	lockWrite                     // Lock held: reads and writes
)

type lockInfo struct {
	mode     lockMode
	pos      token.Pos // the acquiring Lock call; NoPos when seeded by contract
	deferred bool      // a deferred Unlock releases it at every return
	seeded   bool      // held by //cadyvet:locked contract — the caller releases
}

// lockSet maps a rendered guard path ("s.mu", "c.mu") to its hold state.
type lockSet map[string]*lockInfo

func (h lockSet) clone() lockSet {
	c := make(lockSet, len(h))
	for k, v := range h {
		vv := *v
		c[k] = &vv
	}
	return c
}

// mergeLocks intersects two fall-through states: a lock counts as held after
// a branch only if every arriving path holds it, at the weaker mode.
func mergeLocks(a, b lockSet) lockSet {
	out := make(lockSet)
	for k, va := range a {
		vb := b[k]
		if vb == nil {
			continue
		}
		v := *va
		if vb.mode < v.mode {
			v.mode = vb.mode
		}
		v.deferred = va.deferred || vb.deferred
		v.seeded = va.seeded && vb.seeded
		out[k] = &v
	}
	return out
}

type gbState struct {
	p *Pass
	// guarded maps an annotated field object to its guard field name.
	guarded map[*types.Var]string
	// needs maps a local //cadyvet:locked method to its receiver-relative
	// guard field name (imported functions resolve through facts).
	needs map[*types.Func]string
	// contracts maps a local locked function to its raw guard paths.
	contracts map[*types.Func][]string
}

func runGuardedBy(p *Pass) {
	s := &gbState{
		p:         p,
		guarded:   make(map[*types.Var]string),
		needs:     make(map[*types.Func]string),
		contracts: make(map[*types.Func][]string),
	}
	s.collectGuarded()
	fds := p.enclosingFuncs()

	// Collect //cadyvet:locked contracts and export the receiver-relative
	// ones as NeedsLock facts.
	for _, fd := range fds {
		d := p.funcDirective(fd.decl, dirLocked)
		if d == nil {
			continue
		}
		d.used = true
		guards := strings.Fields(d.reason)
		s.contracts[fd.obj] = guards
		if recv := recvName(fd.decl); recv != "" {
			for _, g := range guards {
				if field, ok := strings.CutPrefix(g, recv+"."); ok && !strings.Contains(field, ".") {
					s.needs[fd.obj] = field
					key := funcKey(fd.obj)
					fact := p.Facts.Current.Funcs[key]
					fact.NeedsLock = field
					p.Facts.Put(key, fact)
					break
				}
			}
		}
	}

	for _, fd := range fds {
		if fd.decl.Body == nil {
			continue
		}
		if d := p.funcDirective(fd.decl, dirUnshared); d != nil {
			d.used = true
			continue
		}
		w := &gbWalker{s: s, reported: make(map[token.Pos]bool)}
		held := make(lockSet)
		for _, g := range s.contracts[fd.obj] {
			held[g] = &lockInfo{mode: lockWrite, seeded: true}
		}
		if out, ft := w.block(fd.decl.Body.List, held); ft {
			w.leakCheck(out)
		}
	}
}

// collectGuarded indexes //cadyvet:guardedby field annotations. A directive
// binds to the field on its own line, or — when it occupies a whole comment
// line — to the field on the next line; a trailing directive never bleeds
// onto the following field.
func (s *gbState) collectGuarded() {
	fieldLines := make(map[string]map[int]bool)
	var fields []*ast.Ident
	for _, f := range s.p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					pos := s.p.Fset.Position(name.Pos())
					lines := fieldLines[pos.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						fieldLines[pos.Filename] = lines
					}
					lines[pos.Line] = true
					fields = append(fields, name)
				}
			}
			return true
		})
	}
	for _, name := range fields {
		pos := s.p.Fset.Position(name.Pos())
		for _, d := range s.p.ann.byLine[pos.Filename][pos.Line] {
			if d.kind != dirGuardedBy {
				continue
			}
			if d.pos.Line != pos.Line && fieldLines[pos.Filename][d.pos.Line] {
				continue // another field's trailing directive
			}
			d.used = true
			if v, ok := s.p.Info.Defs[name].(*types.Var); ok {
				s.guarded[v] = d.reason
			}
			break
		}
	}
}

// needsLock resolves the caller-holds-lock contract of a method: the
// receiver-relative guard field name, or "".
func (s *gbState) needsLock(fn *types.Func) string {
	fn = fn.Origin()
	if f, ok := s.needs[fn]; ok {
		return f
	}
	if pkg := fn.Pkg(); pkg != nil && pkg != s.p.Pkg {
		if f, ok := s.p.Facts.Imported(pkg.Path(), funcKey(fn)); ok {
			return f.NeedsLock
		}
	}
	return ""
}

func recvName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	return decl.Recv.List[0].Names[0].Name
}

// renderPath renders a lock or receiver expression as a stable path string
// ("s.mu", "c"), or "" when the expression has no simple spelling (then the
// access is skipped — the analyzer only reasons about named paths).
func renderPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return renderPath(e.X)
	}
	return ""
}

// gbWalker tracks the held-lock set through one function body.
type gbWalker struct {
	s        *gbState
	reported map[token.Pos]bool // leak findings deduped by Lock position
}

// lockOp classifies a call as a mutex operation on a renderable path.
func (w *gbWalker) lockOp(call *ast.CallExpr) (path, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	fn := staticCallee(w.s.p.Info, call)
	if fn == nil || !(methodOn(fn, "sync", "Mutex") || methodOn(fn, "sync", "RWMutex")) {
		return "", ""
	}
	if p := renderPath(sel.X); p != "" {
		return p, sel.Sel.Name
	}
	return "", ""
}

// block walks a statement list; reports whether control falls through.
func (w *gbWalker) block(list []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, st := range list {
		var ft bool
		held, ft = w.stmt(st, held)
		if !ft {
			return held, false
		}
	}
	return held, true
}

func (w *gbWalker) stmt(st ast.Stmt, held lockSet) (lockSet, bool) {
	switch n := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if path, op := w.lockOp(call); op != "" {
				switch op {
				case "Lock":
					held[path] = &lockInfo{mode: lockWrite, pos: call.Pos()}
				case "RLock":
					held[path] = &lockInfo{mode: lockRead, pos: call.Pos()}
				case "Unlock", "RUnlock":
					delete(held, path)
				}
				return held, true
			}
			if isPanicCall(call) {
				w.expr(n.X, held, false)
				return held, false
			}
		}
		w.expr(n.X, held, false)
		return held, true

	case *ast.DeferStmt:
		if path, op := w.lockOp(n.Call); op == "Unlock" || op == "RUnlock" {
			if li := held[path]; li != nil {
				li.deferred = true
			}
			return held, true
		}
		// Args are evaluated now; the call itself runs at return with an
		// unknowable held set, so only literals are walked (lock-free).
		for _, a := range n.Call.Args {
			w.expr(a, held, false)
		}
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			w.lit(lit)
		}
		return held, true

	case *ast.GoStmt:
		// The goroutine does not inherit the launcher's locks.
		for _, a := range n.Call.Args {
			w.expr(a, held, false)
		}
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			w.lit(lit)
		} else {
			w.call(n.Call, make(lockSet))
		}
		return held, true

	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			w.expr(r, held, false)
		}
		if n.Tok != token.DEFINE {
			for _, l := range n.Lhs {
				w.expr(l, held, true)
			}
		}
		return held, true

	case *ast.IncDecStmt:
		w.expr(n.X, held, true)
		return held, true

	case *ast.IfStmt:
		if n.Init != nil {
			held, _ = w.stmt(n.Init, held)
		}
		w.expr(n.Cond, held, false)
		thenHeld, thenFT := w.block(n.Body.List, held.clone())
		elseHeld, elseFT := held.clone(), true
		if n.Else != nil {
			elseHeld, elseFT = w.stmt(n.Else, elseHeld)
		}
		switch {
		case thenFT && elseFT:
			return mergeLocks(thenHeld, elseHeld), true
		case thenFT:
			return thenHeld, true
		case elseFT:
			return elseHeld, true
		default:
			return held, false
		}

	case *ast.ForStmt:
		if n.Init != nil {
			held, _ = w.stmt(n.Init, held)
		}
		if n.Cond != nil {
			w.expr(n.Cond, held, false)
		}
		body := held.clone()
		if out, ft := w.block(n.Body.List, body); ft && n.Post != nil {
			w.stmt(n.Post, out)
		}
		// Conservatively: the loop leaves the held set as it found it.
		return held, true

	case *ast.RangeStmt:
		w.expr(n.X, held, false)
		w.block(n.Body.List, held.clone())
		return held, true

	case *ast.SwitchStmt:
		if n.Init != nil {
			held, _ = w.stmt(n.Init, held)
		}
		if n.Tag != nil {
			w.expr(n.Tag, held, false)
		}
		return w.clauses(n.Body.List, held, !switchHasDefault(n.Body.List))

	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			held, _ = w.stmt(n.Init, held)
		}
		return w.clauses(n.Body.List, held, !switchHasDefault(n.Body.List))

	case *ast.SelectStmt:
		return w.clauses(n.Body.List, held, false)

	case *ast.BlockStmt:
		return w.block(n.List, held)

	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.expr(r, held, false)
		}
		w.leakCheck(held)
		return held, false

	case *ast.BranchStmt:
		// break/continue/goto leave the local flow; the loop-level state is
		// already conservative.
		return held, false

	case *ast.LabeledStmt:
		return w.stmt(n.Stmt, held)

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held, false)
					}
				}
			}
		}
		return held, true

	case *ast.SendStmt:
		w.expr(n.Chan, held, false)
		w.expr(n.Value, held, false)
		return held, true
	}
	return held, true
}

// clauses walks the case/comm clauses of a switch or select, merging the
// fall-through states by intersection. mayskip adds the pre-switch state as
// a path (a switch without default may match no case).
func (w *gbWalker) clauses(list []ast.Stmt, held lockSet, mayskip bool) (lockSet, bool) {
	var out lockSet
	ft := false
	absorb := func(h lockSet, f bool) {
		if !f {
			return
		}
		if out == nil {
			out = h
		} else {
			out = mergeLocks(out, h)
		}
		ft = true
	}
	if mayskip {
		absorb(held.clone(), true)
	}
	for _, c := range list {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e, held, false)
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				held, _ = w.stmt(cc.Comm, held)
			}
			body = cc.Body
		default:
			continue
		}
		h, f := w.block(body, held.clone())
		absorb(h, f)
	}
	if !ft {
		return held, false
	}
	return out, true
}

func switchHasDefault(list []ast.Stmt) bool {
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// lit analyzes a function literal with a fresh held set (literals do not
// inherit the enclosing lock state; a //cadyvet:locked line on the literal
// asserts it only runs under the named lock).
func (w *gbWalker) lit(lit *ast.FuncLit) {
	held := make(lockSet)
	if d := w.s.p.ann.at(w.s.p.Fset.Position(lit.Pos()), dirLocked); d != nil {
		d.used = true
		for _, g := range strings.Fields(d.reason) {
			held[g] = &lockInfo{mode: lockWrite, seeded: true}
		}
	}
	if out, ft := w.block(lit.Body.List, held); ft {
		w.leakCheck(out)
	}
}

// leakCheck reports locks acquired in this function that are still held at a
// return point without a deferred release.
func (w *gbWalker) leakCheck(held lockSet) {
	for path, li := range held {
		if li.seeded || li.deferred || !li.pos.IsValid() || w.reported[li.pos] {
			continue
		}
		w.reported[li.pos] = true
		w.s.p.report(GuardedBy.Name, li.pos, dirAllow,
			"%s is locked here but not released on some return path (missing Unlock or defer)", path)
	}
}

// expr walks an expression checking guarded-field accesses. asWrite marks
// the mutation position of an assignment target or address-taken operand.
func (w *gbWalker) expr(e ast.Expr, held lockSet, asWrite bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		w.expr(e.X, held, asWrite)
	case *ast.SelectorExpr:
		w.fieldAccess(e, held, asWrite)
		w.expr(e.X, held, false)
	case *ast.StarExpr:
		w.expr(e.X, held, asWrite)
	case *ast.IndexExpr:
		w.expr(e.X, held, asWrite)
		w.expr(e.Index, held, false)
	case *ast.IndexListExpr:
		w.expr(e.X, held, asWrite)
		for _, i := range e.Indices {
			w.expr(i, held, false)
		}
	case *ast.SliceExpr:
		w.expr(e.X, held, false)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				w.expr(b, held, false)
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			w.expr(e.X, held, true)
		} else {
			w.expr(e.X, held, false)
		}
	case *ast.BinaryExpr:
		w.expr(e.X, held, false)
		w.expr(e.Y, held, false)
	case *ast.CallExpr:
		w.call(e, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, held, false)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, held, false)
		w.expr(e.Value, held, false)
	case *ast.TypeAssertExpr:
		w.expr(e.X, held, false)
	case *ast.FuncLit:
		w.lit(e)
	}
}

// call checks a call expression: mixed atomic/mutex access of guarded
// fields, //cadyvet:locked contracts of the callee, and its arguments.
func (w *gbWalker) call(call *ast.CallExpr, held lockSet) {
	p := w.s.p
	fn := staticCallee(p.Info, call)
	handled := map[ast.Expr]bool{}

	if fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "atomic" {
		for _, arg := range call.Args {
			ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if obj, guard := w.guardedField(sel); obj != nil {
				handled[arg] = true
				p.report(GuardedBy.Name, arg.Pos(), dirAllow,
					"field %s is guarded by %s but its address is passed to atomic.%s: mixed atomic/mutex access protects nothing",
					obj.Name(), guard, fn.Name())
			}
		}
	}

	if fn != nil {
		if field := w.s.needsLock(fn); field != "" {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if base := renderPath(sel.X); base != "" {
					if held[base+"."+field] == nil {
						p.report(GuardedBy.Name, call.Pos(), dirUnshared,
							"call to %s requires %s.%s held (declared cadyvet:locked)", fn.Name(), base, field)
					}
				}
			}
		}
	}

	w.expr(call.Fun, held, false)
	for _, a := range call.Args {
		if !handled[a] {
			w.expr(a, held, false)
		}
	}
}

// guardedField resolves a selector to an annotated field and its guard.
func (w *gbWalker) guardedField(sel *ast.SelectorExpr) (*types.Var, string) {
	s2, ok := w.s.p.Info.Selections[sel]
	if !ok || s2.Kind() != types.FieldVal {
		return nil, ""
	}
	v, ok := s2.Obj().(*types.Var)
	if !ok {
		return nil, ""
	}
	guard, ok := w.s.guarded[v]
	if !ok {
		return nil, ""
	}
	return v, guard
}

// fieldAccess checks one guarded-field selector against the held set.
func (w *gbWalker) fieldAccess(sel *ast.SelectorExpr, held lockSet, asWrite bool) {
	v, guard := w.guardedField(sel)
	if v == nil {
		return
	}
	base := renderPath(sel.X)
	if base == "" {
		return // no simple spelling for the base: out of model
	}
	li := held[base+"."+guard]
	p := w.s.p
	switch {
	case li == nil:
		p.report(GuardedBy.Name, sel.Sel.Pos(), dirUnshared,
			"access to %s.%s (guarded by %s) without holding %s.%s", base, v.Name(), guard, base, guard)
	case asWrite && li.mode < lockWrite:
		p.report(GuardedBy.Name, sel.Sel.Pos(), dirUnshared,
			"write to %s.%s (guarded by %s) while holding only the read lock %s.%s", base, v.Name(), guard, base, guard)
	}
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
