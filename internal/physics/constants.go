// Package physics collects the physical constants, reference (standard
// stratification) profiles and simple pointwise physical relations used by
// the IAP-AGCM 4.0 dynamical core, following Section 2.1 of Xiao et al.,
// "Communication-Avoiding for Dynamical Core of Atmospheric General
// Circulation Model" (ICPP 2018).
//
// The dynamical core works with the transformed prognostic variables
//
//	U  = P u,   V = P v,   Φ = P R (T − T̃) / b,   p'_sa = p_s − p̃_s,
//
// where P = sqrt(p_es/p0) and p_es = p_s − p_t. All constants here are in SI
// units unless stated otherwise.
package physics

import "math"

// Fundamental constants of the model (paper Section 2.1).
const (
	// EarthRadius is the mean radius of the earth, a (m).
	EarthRadius = 6.371e6

	// Omega is the angular velocity of the earth's rotation (rad/s).
	Omega = 7.292e-5

	// Rd is the gas constant for dry air, R (J/(kg·K)).
	Rd = 287.04

	// Cp is the specific heat of dry air at constant pressure (J/(kg·K)).
	Cp = 1004.64

	// Kappa is R/cp, the adiabatic exponent κ.
	Kappa = Rd / Cp

	// B is the characteristic velocity of gravity-wave propagation in the
	// standard atmosphere, b = 87.8 m/s (paper Section 2.1).
	B = 87.8

	// P0 is the reference surface pressure p0 = 1000 hPa (Pa).
	P0 = 100000.0

	// Pt is the pressure at the model top layer, p_t = 2.2 hPa (Pa).
	Pt = 220.0

	// Ksa is the dissipation coefficient k_sa in the D_sa term (paper eq. 6).
	Ksa = 0.1

	// Gravity is the standard gravitational acceleration (m/s²).
	Gravity = 9.80616
)

// StandardSurfacePressure is the standard-stratification surface pressure
// p̃_s (Pa). The paper subtracts a standard stratification from the state; we
// use the reference pressure p0 as the standard surface pressure, so p'_sa is
// the deviation of p_s from 1000 hPa.
const StandardSurfacePressure = P0

// StandardSurfaceTemperature is T̃_s, the standard-stratification temperature
// at the surface (K).
const StandardSurfaceTemperature = 288.15

// StandardLapseRate is the tropospheric lapse rate of the standard
// stratification (K/m), used to build T̃(σ).
const StandardLapseRate = 6.5e-3

// StandardStratosphereT is the isothermal temperature of the standard
// stratification above the tropopause (K).
const StandardStratosphereT = 216.65

// StandardTemperature returns the standard-stratification temperature T̃ at a
// given σ level (σ = (p − p_t)/p_es with p_es referenced to p̃_s). The profile
// is the US-standard-like piecewise profile: linear lapse in the troposphere,
// isothermal stratosphere. It is smooth, monotone in σ and strictly positive,
// which is all the dynamical core requires of T̃.
func StandardTemperature(sigma float64) float64 {
	// Pressure corresponding to sigma on the standard stratification.
	p := sigma*(StandardSurfacePressure-Pt) + Pt
	// Invert the hydrostatic relation for a constant-lapse-rate atmosphere:
	// T = Ts * (p/ps)^(R*gamma/g).
	expo := Rd * StandardLapseRate / Gravity
	t := StandardSurfaceTemperature * math.Pow(p/StandardSurfacePressure, expo)
	if t < StandardStratosphereT {
		t = StandardStratosphereT
	}
	return t
}

// StandardDensitySurface returns ρ̃_sa = p̃_s / (R·T̃_s), the density of the
// standard atmosphere at the surface (paper eq. 6).
func StandardDensitySurface() float64 {
	return StandardSurfacePressure / (Rd * StandardSurfaceTemperature)
}

// PFromPs returns P = sqrt(p_es/p0) with p_es = p_s − p_t (paper eq. 1).
func PFromPs(ps float64) float64 {
	pes := ps - Pt
	if pes < 0 {
		pes = 0
	}
	return math.Sqrt(pes / P0)
}

// PesFromPs returns p_es = p_s − p_t.
func PesFromPs(ps float64) float64 { return ps - Pt }

// CoriolisFStar returns f* = 2Ω cosθ + u cotθ / a evaluated with colatitude
// θ ∈ (0, π) (paper Section 2.1; the paper's θ is colatitude: sinθ appears as
// the metric factor, which vanishes at the poles).
func CoriolisFStar(theta, u float64) float64 {
	return 2*Omega*math.Cos(theta) + u*math.Cos(theta)/(math.Sin(theta)*EarthRadius)
}

// TemperatureFromPhi inverts the tensor transform for temperature:
// T = T̃ + b·Φ/(P·R). P must be strictly positive.
func TemperatureFromPhi(phi, p, tTilde float64) float64 {
	return tTilde + B*phi/(p*Rd)
}

// PhiFromTemperature applies the tensor transform Φ = P·R·(T − T̃)/b.
func PhiFromTemperature(t, p, tTilde float64) float64 {
	return p * Rd * (t - tTilde) / B
}
