package physics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStandardTemperatureProfile(t *testing.T) {
	// Surface value.
	if ts := StandardTemperature(1); math.Abs(ts-StandardSurfaceTemperature) > 0.5 {
		t.Errorf("T̃(σ=1) = %v, want ≈ %v", ts, StandardSurfaceTemperature)
	}
	// Monotone non-decreasing with σ, floored by the stratosphere value.
	prev := 0.0
	for s := 0.0; s <= 1.0; s += 0.01 {
		v := StandardTemperature(s)
		if v < StandardStratosphereT-1e-9 {
			t.Fatalf("T̃(%v) = %v below the stratosphere floor", s, v)
		}
		if v < prev-1e-9 {
			t.Fatalf("T̃ not monotone at σ=%v", s)
		}
		prev = v
	}
	// Model top is stratospheric.
	if v := StandardTemperature(0); v != StandardStratosphereT {
		t.Errorf("T̃(0) = %v, want %v", v, StandardStratosphereT)
	}
}

func TestPFromPs(t *testing.T) {
	// At standard surface pressure P ≈ sqrt((p0−pt)/p0) ≈ 0.9989.
	want := math.Sqrt((P0 - Pt) / P0)
	if p := PFromPs(P0); math.Abs(p-want) > 1e-12 {
		t.Errorf("P(p0) = %v, want %v", p, want)
	}
	// Clamped at the model top.
	if p := PFromPs(Pt - 100); p != 0 {
		t.Errorf("P below top = %v, want 0", p)
	}
	if p := PFromPs(Pt); p != 0 {
		t.Errorf("P(pt) = %v, want 0", p)
	}
}

func TestPhiTemperatureRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tval := 180 + float64(seed%150)
		p := 0.5 + float64(seed%97)/200
		tTil := 250.0
		phi := PhiFromTemperature(tval, p, tTil)
		back := TemperatureFromPhi(phi, p, tTil)
		return math.Abs(back-tval) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoriolisFStar(t *testing.T) {
	// At the equator (θ = π/2): cos θ = 0, so f* = 0 regardless of u.
	if f := CoriolisFStar(math.Pi/2, 50); math.Abs(f) > 1e-18 {
		t.Errorf("f* at equator = %v", f)
	}
	// Near the north pole f* → 2Ω for u = 0.
	if f := CoriolisFStar(0.01, 0); math.Abs(f-2*Omega) > 1e-7 {
		t.Errorf("f* near pole = %v, want %v", f, 2*Omega)
	}
	// Antisymmetric about the equator for u = 0.
	if f1, f2 := CoriolisFStar(1.0, 0), CoriolisFStar(math.Pi-1.0, 0); math.Abs(f1+f2) > 1e-18 {
		t.Errorf("f* not antisymmetric: %v vs %v", f1, f2)
	}
}

func TestStandardDensity(t *testing.T) {
	rho := StandardDensitySurface()
	if rho < 1.1 || rho > 1.3 {
		t.Errorf("surface density %v kg/m³ unphysical", rho)
	}
}

func TestKappa(t *testing.T) {
	if math.Abs(Kappa-2.0/7.0) > 0.01 {
		t.Errorf("κ = %v, want ≈ 2/7", Kappa)
	}
}
