package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBasicGeometry(t *testing.T) {
	g := New(16, 10, 4)
	if g.Nx != 16 || g.Ny != 10 || g.Nz != 4 {
		t.Fatalf("dims: %+v", g)
	}
	if math.Abs(g.DLambda-2*math.Pi/16) > 1e-15 {
		t.Errorf("DLambda = %v", g.DLambda)
	}
	if math.Abs(g.DTheta-math.Pi/10) > 1e-15 {
		t.Errorf("DTheta = %v", g.DTheta)
	}
}

func TestCentersAvoidPoles(t *testing.T) {
	g := New(16, 9, 3)
	for j, th := range g.ThetaC {
		if th <= 0 || th >= math.Pi {
			t.Errorf("center %d at colatitude %v touches a pole", j, th)
		}
		if g.SinC[j] <= 0 {
			t.Errorf("sinθ at center %d is %v", j, g.SinC[j])
		}
	}
}

func TestInterfacesIncludePoles(t *testing.T) {
	g := New(16, 10, 4)
	if g.ThetaI[0] != 0 || g.SinI[0] != 0 || g.CosI[0] != 1 {
		t.Errorf("north pole interface wrong: θ=%v sin=%v cos=%v", g.ThetaI[0], g.SinI[0], g.CosI[0])
	}
	last := g.Ny
	if math.Abs(g.ThetaI[last]-math.Pi) > 1e-12 || g.SinI[last] != 0 || g.CosI[last] != -1 {
		t.Errorf("south pole interface wrong")
	}
}

func TestSigmaLayers(t *testing.T) {
	g := New(16, 10, 5)
	if g.SigmaI[0] != 0 || g.SigmaI[5] != 1 {
		t.Errorf("σ interfaces must run 0..1: %v", g.SigmaI)
	}
	sum := 0.0
	for k, ds := range g.DSigma {
		if ds <= 0 {
			t.Errorf("Δσ[%d] = %v not positive", k, ds)
		}
		sum += ds
		if g.Sigma[k] <= g.SigmaI[k] || g.Sigma[k] >= g.SigmaI[k+1] {
			t.Errorf("mid-level %d (%v) outside its layer", k, g.Sigma[k])
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Σ Δσ = %v, want 1", sum)
	}
}

func TestNonuniformSigma(t *testing.T) {
	g := NewWithSigma(16, 10, []float64{0, 0.1, 0.3, 0.6, 1})
	if g.Nz != 4 {
		t.Fatalf("Nz = %d", g.Nz)
	}
	if math.Abs(g.DSigma[2]-0.3) > 1e-15 {
		t.Errorf("Δσ[2] = %v", g.DSigma[2])
	}
}

func TestBadSigmaPanics(t *testing.T) {
	for _, bad := range [][]float64{
		{0, 0.5, 0.4, 1}, // not increasing
		{0.1, 0.5, 1},    // not starting at 0
		{0, 0.5, 0.9},    // not ending at 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("σ=%v should panic", bad)
				}
			}()
			NewWithSigma(16, 10, bad)
		}()
	}
}

func TestTooSmallPanics(t *testing.T) {
	for _, dims := range [][3]int{{4, 10, 4}, {16, 3, 4}, {16, 10, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dims %v should panic", dims)
				}
			}()
			New(dims[0], dims[1], dims[2])
		}()
	}
}

func TestWrapX(t *testing.T) {
	g := New(16, 10, 4)
	cases := map[int]int{-1: 15, 0: 0, 15: 15, 16: 0, 17: 1, -16: 0, -17: 15, 33: 1}
	for in, want := range cases {
		if got := g.WrapX(in); got != want {
			t.Errorf("WrapX(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestWrapXProperty(t *testing.T) {
	g := New(32, 10, 4)
	f := func(i int) bool {
		w := g.WrapX(i)
		return w >= 0 && w < g.Nx && ((i-w)%g.Nx == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalAreaApproachesSphere(t *testing.T) {
	sphere := 4 * math.Pi * earthRadius * earthRadius
	for _, ny := range []int{10, 40, 160} {
		g := New(2*ny, ny, 2)
		rel := math.Abs(g.TotalArea()-sphere) / sphere
		// The midpoint rule on sinθ converges quadratically.
		if rel > 2.5/float64(ny*ny) {
			t.Errorf("ny=%d: area error %v too large", ny, rel)
		}
	}
}

func TestLatitudeDeg(t *testing.T) {
	g := New(16, 10, 4)
	if l := g.LatitudeDeg(0); l <= 80 || l >= 90 {
		t.Errorf("row 0 latitude %v not near the north pole", l)
	}
	if l := g.LatitudeDeg(9); l >= -80 || l <= -90 {
		t.Errorf("row 9 latitude %v not near the south pole", l)
	}
	// Symmetry: row j and Ny−1−j mirror.
	for j := 0; j < 5; j++ {
		if d := g.LatitudeDeg(j) + g.LatitudeDeg(9-j); math.Abs(d) > 1e-12 {
			t.Errorf("latitude asymmetry at %d: %v", j, d)
		}
	}
}

func TestPointsAndString(t *testing.T) {
	g := New(16, 10, 4)
	if g.Points() != 640 {
		t.Errorf("Points = %d", g.Points())
	}
	if g.String() == "" {
		t.Error("empty String()")
	}
}

func TestStretchedSigma(t *testing.T) {
	s := StretchedSigmaInterfaces(10, 1.6)
	g := NewWithSigma(16, 10, s)
	// Layers get thinner toward the surface (σ → 1): Δσ decreasing with k.
	for k := 1; k < g.Nz; k++ {
		if g.DSigma[k] >= g.DSigma[k-1] {
			t.Fatalf("stretched layers not monotone at k=%d: %v vs %v", k, g.DSigma[k], g.DSigma[k-1])
		}
	}
	// stretch = 1 is uniform.
	u := StretchedSigmaInterfaces(8, 1)
	for k := 0; k <= 8; k++ {
		if math.Abs(u[k]-float64(k)/8) > 1e-12 {
			t.Fatalf("stretch=1 not uniform at %d", k)
		}
	}
	// Invalid stretch panics.
	defer func() {
		if recover() == nil {
			t.Error("stretch ≤ 0 should panic")
		}
	}()
	StretchedSigmaInterfaces(8, 0)
}

func TestNonuniformSigmaRunsStable(t *testing.T) {
	// A stretched grid must work through the full construction path.
	g := NewWithSigma(32, 16, StretchedSigmaInterfaces(12, 1.5))
	if g.Nz != 12 {
		t.Fatalf("Nz = %d", g.Nz)
	}
	sum := 0.0
	for _, ds := range g.DSigma {
		sum += ds
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Σ Δσ = %v", sum)
	}
}
