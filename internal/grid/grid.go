// Package grid defines the global 3-dimensional latitude–longitude mesh with
// Arakawa C-grid staggering and the terrain-following σ vertical coordinate
// used by the dynamical core (paper Section 2.2).
//
// Directions follow the paper's convention: x is longitude (λ), y is latitude
// (expressed as colatitude θ ∈ (0, π) so that sinθ is the metric factor that
// vanishes at the poles), z is the vertical (σ). Numbers of nodes along the
// three directions are Nx, Ny and Nz.
//
// Staggering (Arakawa C):
//
//	scalars (Φ, T, p's, …)  at cell centers       (λ_i,      θ_j,      σ_k)
//	U                       at west faces          (λ_{i−1/2}, θ_j,     σ_k)
//	V                       at south faces         (λ_i,      θ_{j+1/2}, σ_k)
//
// Longitude is periodic. Latitude cell centers are offset by half a cell from
// the poles (θ_j = (j+1/2)Δθ), so no prognostic point sits exactly on a pole;
// V points at the polar interfaces (θ = 0 and θ = π) are held at zero.
package grid

import (
	"fmt"
	"math"
)

// Grid holds the static geometry of the global mesh. All slices are indexed
// with 0-based global indices. A Grid is immutable after construction and
// safe for concurrent use.
type Grid struct {
	Nx, Ny, Nz int

	// DLambda and DTheta are the angular spacings 2π/Nx and π/Ny.
	DLambda, DTheta float64

	// Lambda holds cell-center longitudes λ_i = i·Δλ, length Nx. The U point
	// for column i sits at λ_i − Δλ/2.
	Lambda []float64

	// ThetaC holds colatitudes of cell centers, θ_j = (j+1/2)·Δθ, length Ny.
	ThetaC []float64
	// ThetaI holds colatitudes of the latitude interfaces where V lives,
	// θ_{j+1/2} = (j+1)·Δθ for j = −1..Ny−1; ThetaI[j] is the *south* face of
	// cell j shifted: ThetaI has length Ny+1 with ThetaI[0] = 0 (north pole)
	// and ThetaI[Ny] = π (south pole). V_{i,j+1/2,k} is stored at index j and
	// lives at colatitude ThetaI[j+1].
	ThetaI []float64

	// SinC, CosC are sin/cos of ThetaC; SinI, CosI of ThetaI.
	SinC, CosC []float64
	SinI, CosI []float64

	// SigmaI holds the Nz+1 σ interfaces with SigmaI[0] = 0 (model top,
	// p = p_t) and SigmaI[Nz] = 1 (surface). Sigma holds the Nz mid-levels
	// and DSigma the layer thicknesses Δσ_k = SigmaI[k+1] − SigmaI[k].
	SigmaI []float64
	Sigma  []float64
	DSigma []float64
}

// New constructs a grid with uniform angular spacing and uniform σ layers.
// It panics if any extent is non-positive or too small for the widest stencil
// (the fourth-difference smoothing needs Nx ≥ 8 and Ny ≥ 5; the vertical
// operators need Nz ≥ 2).
func New(nx, ny, nz int) *Grid {
	return NewWithSigma(nx, ny, uniformSigmaInterfaces(nz))
}

// NewWithSigma constructs a grid with uniform angular spacing and the given
// σ interfaces (len Nz+1, strictly increasing from 0 to 1).
func NewWithSigma(nx, ny int, sigmaI []float64) *Grid {
	nz := len(sigmaI) - 1
	if nx < 8 {
		panic(fmt.Sprintf("grid: Nx = %d too small (need ≥ 8 for the x stencils)", nx))
	}
	if ny < 5 {
		panic(fmt.Sprintf("grid: Ny = %d too small (need ≥ 5 for the y stencils)", ny))
	}
	if nz < 2 {
		panic(fmt.Sprintf("grid: Nz = %d too small (need ≥ 2 for the vertical operators)", nz))
	}
	if err := validateSigma(sigmaI); err != nil {
		panic("grid: " + err.Error())
	}

	g := &Grid{
		Nx:      nx,
		Ny:      ny,
		Nz:      nz,
		DLambda: 2 * math.Pi / float64(nx),
		DTheta:  math.Pi / float64(ny),
	}

	g.Lambda = make([]float64, nx)
	for i := 0; i < nx; i++ {
		g.Lambda[i] = float64(i) * g.DLambda
	}

	g.ThetaC = make([]float64, ny)
	g.SinC = make([]float64, ny)
	g.CosC = make([]float64, ny)
	for j := 0; j < ny; j++ {
		th := (float64(j) + 0.5) * g.DTheta
		g.ThetaC[j] = th
		g.SinC[j] = math.Sin(th)
		g.CosC[j] = math.Cos(th)
	}

	g.ThetaI = make([]float64, ny+1)
	g.SinI = make([]float64, ny+1)
	g.CosI = make([]float64, ny+1)
	for j := 0; j <= ny; j++ {
		th := float64(j) * g.DTheta
		g.ThetaI[j] = th
		g.SinI[j] = math.Sin(th)
		g.CosI[j] = math.Cos(th)
	}
	// Force the exact polar values so metric terms vanish identically there.
	g.SinI[0], g.CosI[0] = 0, 1
	g.SinI[ny], g.CosI[ny] = 0, -1

	g.SigmaI = append([]float64(nil), sigmaI...)
	g.Sigma = make([]float64, nz)
	g.DSigma = make([]float64, nz)
	for k := 0; k < nz; k++ {
		g.Sigma[k] = 0.5 * (sigmaI[k] + sigmaI[k+1])
		g.DSigma[k] = sigmaI[k+1] - sigmaI[k]
	}
	return g
}

// StretchedSigmaInterfaces returns Nz+1 σ interfaces concentrated toward
// the surface: σ_k = 1 − (1 − k/Nz)^stretch with stretch > 1 — the layer
// placement production models use (thin boundary-layer levels near σ = 1,
// thick stratospheric ones near the top). stretch = 1 reproduces the
// uniform spacing.
func StretchedSigmaInterfaces(nz int, stretch float64) []float64 {
	if nz < 1 {
		panic(fmt.Sprintf("grid: Nz = %d must be positive", nz))
	}
	if stretch <= 0 {
		panic(fmt.Sprintf("grid: stretch = %g must be positive", stretch))
	}
	s := make([]float64, nz+1)
	for k := 0; k <= nz; k++ {
		s[k] = 1 - math.Pow(1-float64(k)/float64(nz), stretch)
	}
	s[0], s[nz] = 0, 1
	return s
}

func uniformSigmaInterfaces(nz int) []float64 {
	if nz < 1 {
		panic(fmt.Sprintf("grid: Nz = %d must be positive", nz))
	}
	s := make([]float64, nz+1)
	for k := 0; k <= nz; k++ {
		s[k] = float64(k) / float64(nz)
	}
	return s
}

func validateSigma(sigmaI []float64) error {
	n := len(sigmaI)
	if n < 3 {
		return fmt.Errorf("need at least 3 σ interfaces, got %d", n)
	}
	if sigmaI[0] != 0 || sigmaI[n-1] != 1 {
		return fmt.Errorf("σ interfaces must run from 0 to 1, got [%g, %g]", sigmaI[0], sigmaI[n-1])
	}
	for k := 1; k < n; k++ {
		if sigmaI[k] <= sigmaI[k-1] {
			return fmt.Errorf("σ interfaces must be strictly increasing: σ[%d]=%g ≤ σ[%d]=%g",
				k, sigmaI[k], k-1, sigmaI[k-1])
		}
	}
	return nil
}

// WrapX maps an arbitrary (possibly negative) longitude index into [0, Nx).
func (g *Grid) WrapX(i int) int {
	i %= g.Nx
	if i < 0 {
		i += g.Nx
	}
	return i
}

// LatitudeDeg returns the geographic latitude in degrees of cell-center row
// j: +90° at the north pole (θ = 0) to −90° at the south pole (θ = π).
func (g *Grid) LatitudeDeg(j int) float64 {
	return 90 - g.ThetaC[j]*180/math.Pi
}

// CellArea returns the spherical surface area weight of cell (i, j):
// a²·sinθ_j·Δθ·Δλ. It is independent of i.
func (g *Grid) CellArea(j int) float64 {
	const a = earthRadius
	return a * a * g.SinC[j] * g.DTheta * g.DLambda
}

// TotalArea returns the total surface area represented by the mesh weights,
// Σ_{i,j} CellArea(j). It approaches 4πa² as Ny grows.
func (g *Grid) TotalArea() float64 {
	sum := 0.0
	for j := 0; j < g.Ny; j++ {
		sum += g.CellArea(j)
	}
	return sum * float64(g.Nx)
}

// Points returns the total number of mesh points Nx·Ny·Nz.
func (g *Grid) Points() int { return g.Nx * g.Ny * g.Nz }

// String implements fmt.Stringer.
func (g *Grid) String() string {
	return fmt.Sprintf("grid %dx%dx%d (Δλ=%.4g°, Δθ=%.4g°, %d σ layers)",
		g.Nx, g.Ny, g.Nz, g.DLambda*180/math.Pi, g.DTheta*180/math.Pi, g.Nz)
}

// earthRadius mirrors physics.EarthRadius; duplicated here to keep grid free
// of dependencies (it is a pure-geometry package).
const earthRadius = 6.371e6
