package grid

import (
	"fmt"
	"math"
)

// This file holds the contiguous 1-D row-partition helpers the decomposition
// planner uses. The polar Fourier filter only does work on rows poleward of
// its cutoff latitude, so the per-row cost of the dynamical core is skewed
// toward the poles; a weighted partition hands polar ranks fewer rows.

// UniformRowStarts returns the canonical uniform partition of ny rows into
// parts chunks: starts[i] = i·ny/parts, length parts+1. It is exactly the
// row assignment internal/topo uses when no explicit partition is given.
func UniformRowStarts(ny, parts int) []int {
	starts := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		starts[i] = i * ny / parts
	}
	return starts
}

// WeightedRowStarts partitions rows 0..len(weights)-1 into parts contiguous
// chunks, each at least minRows rows, minimizing the maximum chunk weight.
// Weights must be non-negative. The result is deterministic: among optimal
// partitions it returns the one whose boundary vector is lexicographically
// smallest. It panics if parts·minRows exceeds the row count.
func WeightedRowStarts(weights []float64, parts, minRows int) []int {
	ny := len(weights)
	if parts < 1 || minRows < 1 {
		panic(fmt.Sprintf("grid: WeightedRowStarts parts=%d minRows=%d must be positive", parts, minRows))
	}
	if parts*minRows > ny {
		panic(fmt.Sprintf("grid: cannot cut %d rows into %d chunks of ≥ %d rows", ny, parts, minRows))
	}
	prefix := make([]float64, ny+1)
	for j, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("grid: negative row weight %v at row %d", w, j))
		}
		prefix[j+1] = prefix[j] + w
	}
	// sdp[p][i]: minimal achievable max-chunk weight splitting the suffix
	// rows [i, ny) into p chunks of ≥ minRows rows each. O(parts·ny²), fine
	// at planner scale (ny ≤ a few hundred, parts ≤ 64). The reconstruction
	// below compares the very same float values the recurrence minimized, so
	// no epsilon slop is needed anywhere.
	const inf = math.MaxFloat64
	sdp := make([][]float64, parts+1)
	for p := range sdp {
		sdp[p] = make([]float64, ny+1)
		for i := range sdp[p] {
			sdp[p][i] = inf
		}
	}
	for i := 0; i+minRows <= ny; i++ {
		sdp[1][i] = prefix[ny] - prefix[i]
	}
	for p := 2; p <= parts; p++ {
		for i := 0; i+p*minRows <= ny; i++ {
			best := inf
			for j := i + minRows; j+(p-1)*minRows <= ny; j++ {
				cost := math.Max(prefix[j]-prefix[i], sdp[p-1][j])
				if cost < best {
					best = cost
				}
			}
			sdp[p][i] = best
		}
	}
	opt := sdp[parts][0]
	// Reconstruct front-to-back, at each boundary picking the smallest next
	// start whose chunk fits in opt and whose suffix still completes within
	// opt — the lexicographically smallest optimal boundary vector, hence
	// deterministic. Both comparisons reuse floats the DP computed exactly.
	starts := make([]int, parts+1)
	starts[parts] = ny
	at := 0
	for p := 1; p < parts; p++ {
		rem := parts - p
		found := false
		for j := at + minRows; j+rem*minRows <= ny; j++ {
			if prefix[j]-prefix[at] <= opt && sdp[rem][j] <= opt {
				starts[p] = j
				at = j
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("grid: WeightedRowStarts reconstruction stuck at chunk %d (opt %v)", p, opt))
		}
	}
	return starts
}

// PolarRows reports, per cell-center row, whether the polar Fourier filter
// is active at that row for the given cutoff latitude — the same rule
// internal/filter applies: a row is filtered iff |sinθ_j| < sin(θ_cutoff),
// i.e. the row lies poleward of ±(90−cutoffLatDeg)° latitude.
func (g *Grid) PolarRows(cutoffLatDeg float64) []bool {
	sinc := math.Sin((90 - cutoffLatDeg) * math.Pi / 180)
	active := make([]bool, g.Ny)
	for j := 0; j < g.Ny; j++ {
		active[j] = g.SinC[j] < sinc
	}
	return active
}
