package grid

import (
	"math"
	"testing"
)

func TestUniformRowStarts(t *testing.T) {
	starts := UniformRowStarts(10, 4)
	want := []int{0, 2, 5, 7, 10}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("UniformRowStarts(10,4) = %v, want %v", starts, want)
		}
	}
}

func maxChunk(weights []float64, starts []int) float64 {
	m := 0.0
	for p := 0; p+1 < len(starts); p++ {
		s := 0.0
		for j := starts[p]; j < starts[p+1]; j++ {
			s += weights[j]
		}
		if s > m {
			m = s
		}
	}
	return m
}

func TestWeightedRowStartsBalances(t *testing.T) {
	// Polar-skewed weights: heavy at both ends, light in the middle.
	weights := []float64{5, 5, 1, 1, 1, 1, 1, 1, 5, 5}
	starts := WeightedRowStarts(weights, 3, 2)
	if starts[0] != 0 || starts[3] != 10 {
		t.Fatalf("bad span: %v", starts)
	}
	// Optimal max-chunk weight here is 11 ([0,2) [2,8) [8,10) → 10, 6, 10
	// is 10; check we are at least as good as the uniform partition and
	// that polar chunks hold fewer rows than the middle one.
	uni := maxChunk(weights, UniformRowStarts(10, 3))
	got := maxChunk(weights, starts)
	if got > uni {
		t.Errorf("weighted max chunk %v worse than uniform %v (starts %v)", got, uni, starts)
	}
	if r0, r1, r2 := starts[1]-starts[0], starts[2]-starts[1], starts[3]-starts[2]; r1 <= r0 || r1 <= r2 {
		t.Errorf("middle chunk should hold the most rows: %d,%d,%d (starts %v)", r0, r1, r2, starts)
	}
}

func TestWeightedRowStartsUniformWeights(t *testing.T) {
	weights := make([]float64, 12)
	for i := range weights {
		weights[i] = 1
	}
	starts := WeightedRowStarts(weights, 4, 2)
	for p := 0; p < 4; p++ {
		if starts[p+1]-starts[p] != 3 {
			t.Fatalf("uniform weights should split evenly, got %v", starts)
		}
	}
}

func TestWeightedRowStartsDeterministic(t *testing.T) {
	weights := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8}
	a := WeightedRowStarts(weights, 4, 2)
	b := WeightedRowStarts(weights, 4, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
	if maxChunk(weights, a) <= 0 {
		t.Fatal("degenerate partition")
	}
}

func TestWeightedRowStartsMinRows(t *testing.T) {
	// One huge row: the optimizer must still honor minRows everywhere.
	weights := []float64{100, 1, 1, 1, 1, 1, 1, 1}
	starts := WeightedRowStarts(weights, 3, 2)
	for p := 0; p < 3; p++ {
		if starts[p+1]-starts[p] < 2 {
			t.Fatalf("chunk %d below minRows: %v", p, starts)
		}
	}
}

// checkValid asserts the structural contract of a partition: full span,
// strictly increasing, every chunk at least minRows rows.
func checkValid(t *testing.T, starts []int, ny, parts, minRows int) {
	t.Helper()
	if len(starts) != parts+1 || starts[0] != 0 || starts[parts] != ny {
		t.Fatalf("bad span: %v (ny=%d parts=%d)", starts, ny, parts)
	}
	for p := 0; p < parts; p++ {
		if starts[p+1]-starts[p] < minRows {
			t.Fatalf("chunk %d below minRows=%d: %v", p, minRows, starts)
		}
	}
}

// bruteOpt finds the optimal max-chunk weight by exhaustive recursion.
func bruteOpt(weights []float64, from, parts, minRows int) float64 {
	ny := len(weights)
	if parts == 1 {
		if ny-from < minRows {
			return math.MaxFloat64
		}
		s := 0.0
		for j := from; j < ny; j++ {
			s += weights[j]
		}
		return s
	}
	best := math.MaxFloat64
	chunk := 0.0
	for j := from + 1; j+(parts-1)*minRows <= ny; j++ {
		chunk += weights[j-1]
		if j-from < minRows {
			continue
		}
		rest := bruteOpt(weights, j, parts-1, minRows)
		if c := math.Max(chunk, rest); c < best {
			best = c
		}
	}
	return best
}

func TestWeightedRowStartsMatchesBruteForce(t *testing.T) {
	patterns := [][]float64{
		{5, 5, 1, 1, 1, 1, 1, 1, 5, 5},
		{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8},
		{0, 0, 0, 7, 0, 0, 0, 7, 0, 0, 0, 7, 0, 0},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	}
	for _, weights := range patterns {
		ny := len(weights)
		for parts := 2; parts <= 4; parts++ {
			for minRows := 1; minRows <= 2; minRows++ {
				if parts*minRows > ny {
					continue
				}
				starts := WeightedRowStarts(weights, parts, minRows)
				checkValid(t, starts, ny, parts, minRows)
				got := maxChunk(weights, starts)
				want := bruteOpt(weights, 0, parts, minRows)
				if got != want {
					t.Errorf("weights %v parts=%d minRows=%d: max chunk %v, optimum %v (starts %v)",
						weights, parts, minRows, got, want, starts)
				}
			}
		}
	}
}

func TestWeightedRowStartsPolarPattern96x8(t *testing.T) {
	// Regression: the planner's real row-weight shape — a flat stencil cost
	// with a large filter surcharge on the polar thirds — made the previous
	// reconstruction (exact outer check + epsilon-slopped greedy completion)
	// emit a non-increasing boundary vector for 96 rows into 8 chunks.
	weights := make([]float64, 96)
	for j := range weights {
		weights[j] = 1
		if j < 32 || j >= 64 {
			weights[j] += 17.3
		}
	}
	starts := WeightedRowStarts(weights, 8, 2)
	checkValid(t, starts, 96, 8, 2)
	if got, uni := maxChunk(weights, starts), maxChunk(weights, UniformRowStarts(96, 8)); got > uni {
		t.Errorf("weighted max chunk %v worse than uniform %v: %v", got, uni, starts)
	}
}

func TestPolarRows(t *testing.T) {
	g := New(16, 10, 4)
	active := g.PolarRows(60)
	// Symmetric about the equator.
	for j := 0; j < g.Ny; j++ {
		if active[j] != active[g.Ny-1-j] {
			t.Fatalf("PolarRows not symmetric: %v", active)
		}
	}
	// Rows poleward of the cutoff are active, equatorial rows are not.
	sinc := math.Sin(30 * math.Pi / 180)
	for j := 0; j < g.Ny; j++ {
		want := g.SinC[j] < sinc
		if active[j] != want {
			t.Fatalf("row %d: active=%v want %v", j, active[j], want)
		}
	}
	if active[0] != true || active[g.Ny/2] != false {
		t.Fatalf("expected polar active / equator inactive: %v", active)
	}
}
