package trace

import (
	"math"
	"strings"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
)

func TestRenderSyntheticEvents(t *testing.T) {
	m := comm.NetModel{Latency: 1e-3, ByteTime: 0, SendOverhead: 1e-4, ComputeRate: 1000}
	w := comm.NewWorld(2, m)
	rec := w.EnableTrace()
	w.Run(func(c *comm.Comm) {
		c.SetCategory(comm.CatStencil)
		if c.Rank() == 0 {
			c.Compute(2) // 2 ms of compute
			c.Send(1, 0, []float64{1})
		} else {
			c.Recv(0, 0) // waits ~3 ms
			c.Compute(1)
		}
	})
	tl := Render(rec, 40)
	if len(tl.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(tl.Rows))
	}
	if !strings.Contains(tl.Rows[0], "#") {
		t.Error("rank 0 shows no compute")
	}
	if !strings.Contains(tl.Rows[0], "s") {
		t.Error("rank 0 shows no stencil send")
	}
	if !strings.Contains(tl.Rows[1], "s") {
		t.Error("rank 1 shows no stencil wait")
	}
	// Rank 1 waits while rank 0 computes: its row starts with comm.
	if tl.Rows[1][0] != 's' {
		t.Errorf("rank 1 row should start with a wait, got %q", tl.Rows[1][:5])
	}
	if !strings.Contains(tl.Format(), "rank   0") {
		t.Error("Format lacks rank labels")
	}
}

func TestRenderEmpty(t *testing.T) {
	w := comm.NewWorld(1, comm.Zero())
	rec := w.EnableTrace()
	w.Run(func(c *comm.Comm) {})
	tl := Render(rec, 40)
	if tl.T1 != 0 {
		t.Errorf("empty trace has T1 = %v", tl.T1)
	}
	if out := tl.Format(); !strings.Contains(out, "no events") {
		t.Errorf("empty format = %q", out)
	}
}

func TestUtilizationSumsToOne(t *testing.T) {
	m := comm.NetModel{Latency: 1e-3, ByteTime: 0, SendOverhead: 1e-4, ComputeRate: 1000}
	w := comm.NewWorld(2, m)
	rec := w.EnableTrace()
	w.Run(func(c *comm.Comm) {
		c.Compute(float64(1 + c.Rank()))
		c.Barrier()
	})
	u := Utilization(rec)
	sum := u["compute"] + u["comm"] + u["idle"]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("utilization sums to %v", sum)
	}
	if u["compute"] <= 0 {
		t.Error("no compute recorded")
	}
}

func TestDycoreTimelineShowsAlgorithmStructure(t *testing.T) {
	// The CA timeline must show z-collectives and stencil exchanges; the
	// X-Y baseline must show x-collectives and no z-collectives.
	g := grid.New(16, 10, 4)
	cfg := dycore.DefaultConfig()
	cfg.M = 2
	cfg.Dt1, cfg.Dt2 = 30, 180

	_, rec := dycore.RunTraced(dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg},
		g, comm.TianheLike(), heldsuarez.InitialState, 1, nil)
	tl := Render(rec, 120)
	joined := strings.Join(tl.Rows, "")
	if !strings.Contains(joined, "z") || !strings.Contains(joined, "s") || !strings.Contains(joined, "#") {
		t.Errorf("CA timeline missing expected glyphs:\n%s", tl.Format())
	}
	if strings.Contains(joined, "x") {
		t.Error("CA timeline shows x-collectives (p_x = 1 must make F̃ local)")
	}

	_, rec2 := dycore.RunTraced(dycore.Setup{Alg: dycore.AlgBaselineXY, PA: 2, PB: 2, Cfg: cfg},
		g, comm.TianheLike(), heldsuarez.InitialState, 1, nil)
	tl2 := Render(rec2, 120)
	joined2 := strings.Join(tl2.Rows, "")
	if !strings.Contains(joined2, "x") {
		t.Errorf("X-Y timeline shows no x-collectives:\n%s", tl2.Format())
	}
	if strings.Contains(joined2, "z") {
		t.Error("X-Y timeline shows z-collectives (p_z = 1 must make Ĉ local)")
	}
}

func TestResetDropsSetupEvents(t *testing.T) {
	m := comm.NetModel{Latency: 1e-3, ByteTime: 0, SendOverhead: 1e-4, ComputeRate: 1000}
	w := comm.NewWorld(2, m)
	rec := w.EnableTrace()
	w.Run(func(c *comm.Comm) {
		c.Compute(5) // setup work
		c.ResetStats()
		c.Compute(1)
	})
	for _, e := range rec.Events() {
		if e.T1 > 1.1e-3 {
			t.Errorf("pre-reset event survived: %+v", e)
		}
	}
}
