// Package trace renders the per-rank event streams recorded by
// comm.Recorder as an ASCII timeline (a Gantt chart of simulated time) —
// the poor man's Vampir. One row per rank, one character per time bucket:
//
//	#  computation
//	z  z-collective communication (Ĉ)
//	x  x-collective communication (F̃ transposes)
//	s  stencil halo exchange (send/receive overhead and waits)
//	o  other communication
//	·  idle (the rank's clock had no recorded span in the bucket)
//
// The chart makes the difference between the algorithms tangible: the
// baseline shows 13 stencil bands per step; the communication-avoiding
// algorithm shows two — with computation (#) continuing through the first
// one, the Section 4.3.1 overlap.
package trace

import (
	"fmt"
	"strings"

	"cadycore/internal/comm"
)

// Timeline is a rendered chart plus its scale.
type Timeline struct {
	Width   int
	T1      float64 // end of the rendered window (seconds, simulated)
	Rows    []string
	Legend  string
	Buckets float64 // seconds per character
}

// Render builds a timeline of width chars from the recorder's events.
func Render(rec *comm.Recorder, width int) Timeline {
	events := rec.Events()
	tl := Timeline{Width: width}
	for _, e := range events {
		if e.T1 > tl.T1 {
			tl.T1 = e.T1
		}
	}
	if tl.T1 <= 0 || width <= 0 {
		tl.Legend = "no events recorded"
		return tl
	}
	tl.Buckets = tl.T1 / float64(width)

	// Priority per bucket: communication over compute over idle, so thin
	// exchanges stay visible between wide compute spans.
	prio := func(ch byte) int {
		switch ch {
		case 'x':
			return 5
		case 'z':
			return 4
		case 's':
			return 3
		case 'o':
			return 2
		case '#':
			return 1
		default:
			return 0
		}
	}
	glyph := func(e comm.Event) byte {
		if e.Kind == comm.EvCompute {
			return '#'
		}
		switch e.Cat {
		case comm.CatCollectiveZ:
			return 'z'
		case comm.CatCollectiveX:
			return 'x'
		case comm.CatStencil:
			return 's'
		default:
			return 'o'
		}
	}

	rows := make([][]byte, rec.Ranks())
	for r := range rows {
		rows[r] = []byte(strings.Repeat(".", width))
	}
	for _, e := range events {
		g := glyph(e)
		b0 := int(e.T0 / tl.Buckets)
		b1 := int(e.T1 / tl.Buckets)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			if prio(g) > prio(rows[e.Rank][b]) {
				rows[e.Rank][b] = g
			}
		}
	}
	tl.Rows = make([]string, len(rows))
	for r, row := range rows {
		tl.Rows[r] = string(row)
	}
	tl.Legend = "# compute   z z-collective   x x-collective   s stencil exchange   o other   . idle"
	return tl
}

// Format renders the timeline with rank labels and a time axis.
func (tl Timeline) Format() string {
	var sb strings.Builder
	if len(tl.Rows) == 0 {
		return tl.Legend + "\n"
	}
	fmt.Fprintf(&sb, "simulated time 0 .. %.4g s, %.3g s per column\n", tl.T1, tl.Buckets)
	for r, row := range tl.Rows {
		fmt.Fprintf(&sb, "rank %3d |%s|\n", r, row)
	}
	sb.WriteString("          ")
	sb.WriteString(tl.Legend)
	sb.WriteByte('\n')
	return sb.String()
}

// Utilization summarizes the fraction of total rank-time spent per glyph
// class — a quick overlap-efficiency metric.
func Utilization(rec *comm.Recorder) map[string]float64 {
	events := rec.Events()
	total := 0.0
	for _, e := range events {
		if e.T1 > total {
			total = e.T1
		}
	}
	out := map[string]float64{"compute": 0, "comm": 0, "idle": 0}
	if total <= 0 {
		return out
	}
	busy := make([]float64, rec.Ranks())
	for _, e := range events {
		d := e.T1 - e.T0
		busy[e.Rank] += d
		if e.Kind == comm.EvCompute {
			out["compute"] += d
		} else {
			out["comm"] += d
		}
	}
	denom := total * float64(rec.Ranks())
	for _, b := range busy {
		out["idle"] += total - b
	}
	for k := range out {
		out[k] /= denom
	}
	return out
}
