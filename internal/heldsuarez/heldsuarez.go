// Package heldsuarez implements the Held–Suarez (1994) idealized dry-model
// forcing, the benchmark the paper evaluates the dynamical core with
// (Section 5.1): Newtonian relaxation of temperature toward a prescribed
// radiative-equilibrium profile and Rayleigh damping of low-level winds. It
// exercises the dynamical core independently of physical parameterizations.
//
// The forcing is pointwise in the horizontal and therefore adds no
// communication; it is applied between dynamics steps to the physical
// variables recovered from the transformed state and then folded back.
package heldsuarez

import (
	"math"

	"cadycore/internal/grid"
	"cadycore/internal/physics"
	"cadycore/internal/state"
)

// Params are the standard Held–Suarez constants.
type Params struct {
	DeltaTy   float64 // ΔT_y: equator–pole equilibrium temperature contrast (K)
	DeltaThz  float64 // Δθ_z: vertical potential-temperature contrast (K)
	Ka        float64 // 1/s: temperature relaxation rate aloft
	Ks        float64 // 1/s: temperature relaxation rate at the surface (tropics)
	Kf        float64 // 1/s: boundary-layer Rayleigh friction rate
	SigmaB    float64 // σ_b: boundary-layer top
	T0        float64 // global equilibrium reference temperature (K)
	TStratMin float64 // floor temperature (K)
}

// Standard returns the constants of Held & Suarez (1994).
func Standard() Params {
	const day = 86400.0
	return Params{
		DeltaTy:   60,
		DeltaThz:  10,
		Ka:        1.0 / (40 * day),
		Ks:        1.0 / (4 * day),
		Kf:        1.0 / day,
		SigmaB:    0.7,
		T0:        315,
		TStratMin: 200,
	}
}

// Teq returns the radiative-equilibrium temperature at geographic latitude
// φ (radians) and pressure p (Pa).
func (hs Params) Teq(phi, p float64) float64 {
	sin2 := math.Sin(phi) * math.Sin(phi)
	cos2 := 1 - sin2
	pr := p / physics.P0
	t := (hs.T0 - hs.DeltaTy*sin2 - hs.DeltaThz*math.Log(pr)*cos2) * math.Pow(pr, physics.Kappa)
	if t < hs.TStratMin {
		t = hs.TStratMin
	}
	return t
}

// KT returns the temperature relaxation rate at latitude φ and level σ.
func (hs Params) KT(phi, sigma float64) float64 {
	w := (sigma - hs.SigmaB) / (1 - hs.SigmaB)
	if w < 0 {
		w = 0
	}
	c := math.Cos(phi)
	return hs.Ka + (hs.Ks-hs.Ka)*w*c*c*c*c
}

// KV returns the Rayleigh friction rate at level σ.
func (hs Params) KV(sigma float64) float64 {
	w := (sigma - hs.SigmaB) / (1 - hs.SigmaB)
	if w < 0 {
		w = 0
	}
	return hs.Kf * w
}

// Apply integrates the forcing over dt seconds on the owned region of st
// (implicit/exact updates, unconditionally stable):
//
//	u, v ← u, v / (1 + dt·k_v)
//	T    ← (T + dt·k_T·T_eq) / (1 + dt·k_T)
//
// applied directly to the transformed variables: U and V scale like u and v
// (P is unchanged by the forcing), and Φ maps affinely to T.
func (hs Params) Apply(g *grid.Grid, st *state.State, dt float64) {
	b := st.B
	// Winds: U at centers' west faces, V at interfaces. The friction factor
	// depends only on σ.
	for k := b.K0; k < b.K1; k++ {
		sig := g.Sigma[k]
		fv := 1 / (1 + dt*hs.KV(sig))
		if fv != 1 {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					st.U.Set(i, j, k, st.U.At(i, j, k)*fv)
					st.V.Set(i, j, k, st.V.At(i, j, k)*fv)
				}
			}
		}
	}
	// Temperature relaxation on Φ = P·R·(T−T̃)/b at centers.
	for k := b.K0; k < b.K1; k++ {
		sig := g.Sigma[k]
		tTil := physics.StandardTemperature(sig)
		for j := b.J0; j < b.J1; j++ {
			phiLat := math.Pi/2 - g.ThetaC[j] // geographic latitude
			kT := hs.KT(phiLat, sig)
			denom := 1 / (1 + dt*kT)
			for i := b.I0; i < b.I1; i++ {
				ps := physics.StandardSurfacePressure + st.Psa.At(i, j)
				p := physics.PFromPs(ps)
				if p <= 0 {
					continue
				}
				pres := sig*physics.PesFromPs(ps) + physics.Pt
				t := physics.TemperatureFromPhi(st.Phi.At(i, j, k), p, tTil)
				teq := hs.Teq(phiLat, pres)
				tNew := (t + dt*kT*teq) * denom
				st.Phi.Set(i, j, k, physics.PhiFromTemperature(tNew, p, tTil))
			}
		}
	}
}

// InitialState fills st's owned region with the standard H-S starting
// condition: an isothermal-ish resting atmosphere near the equilibrium
// profile with a small zonally asymmetric temperature perturbation to break
// symmetry.
func InitialState(g *grid.Grid, st *state.State) {
	hs := Standard()
	st.InitFromPhysical(g,
		func(lam, th, sig float64) float64 { return 0 }, // u
		func(lam, th, sig float64) float64 { return 0 }, // v
		func(lam, th, sig float64) float64 { // T
			phi := math.Pi/2 - th
			p := sig*(physics.P0-physics.Pt) + physics.Pt
			pert := 0.5 * math.Sin(4*lam) * math.Sin(th) * math.Sin(th)
			return hs.Teq(phi, p) + pert
		},
		func(lam, th float64) float64 { return physics.P0 }, // ps
	)
}
