package heldsuarez

import (
	"math"
	"testing"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/physics"
	"cadycore/internal/state"
)

func TestTeqProfile(t *testing.T) {
	hs := Standard()
	// Warm equatorial surface near T0.
	if te := hs.Teq(0, physics.P0); math.Abs(te-hs.T0) > 1e-9 {
		t.Errorf("equatorial surface Teq = %v, want %v", te, hs.T0)
	}
	// Poles colder than the equator at the surface by ΔT_y.
	dp := hs.Teq(0, physics.P0) - hs.Teq(math.Pi/2, physics.P0)
	if math.Abs(dp-hs.DeltaTy) > 1e-9 {
		t.Errorf("equator-pole contrast = %v, want %v", dp, hs.DeltaTy)
	}
	// Stratospheric floor.
	if te := hs.Teq(0, 100.0); te != hs.TStratMin {
		t.Errorf("Teq aloft = %v, want the %v floor", te, hs.TStratMin)
	}
}

func TestRelaxationRates(t *testing.T) {
	hs := Standard()
	// Above the boundary layer kT = ka everywhere.
	if kt := hs.KT(0.3, 0.5); kt != hs.Ka {
		t.Errorf("kT aloft = %v, want ka = %v", kt, hs.Ka)
	}
	// At the equatorial surface kT = ks.
	if kt := hs.KT(0, 1.0); math.Abs(kt-hs.Ks) > 1e-12 {
		t.Errorf("kT equator surface = %v, want ks = %v", kt, hs.Ks)
	}
	// Friction zero aloft, kf at the surface.
	if kv := hs.KV(0.5); kv != 0 {
		t.Errorf("kv aloft = %v, want 0", kv)
	}
	if kv := hs.KV(1.0); math.Abs(kv-hs.Kf) > 1e-15 {
		t.Errorf("kv surface = %v, want kf", kv)
	}
	// kT between ka and ks everywhere.
	for _, phi := range []float64{-1.2, 0, 0.7} {
		for _, sig := range []float64{0, 0.4, 0.8, 1} {
			kt := hs.KT(phi, sig)
			if kt < hs.Ka-1e-15 || kt > hs.Ks+1e-15 {
				t.Errorf("kT(%v,%v) = %v outside [ka, ks]", phi, sig, kt)
			}
		}
	}
}

func testBlock(g *grid.Grid) field.Block {
	return field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 3, Hy: 2, Hz: 1,
	}
}

func TestApplyDampsWinds(t *testing.T) {
	g := grid.New(16, 10, 6)
	st := state.New(testBlock(g))
	// Wind everywhere; forcing must damp only boundary-layer levels.
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				st.U.Set(i, j, k, 10)
				if j > 0 {
					st.V.Set(i, j, k, 5)
				}
			}
		}
	}
	hs := Standard()
	hs.Apply(g, st, 86400) // one day
	for k := 0; k < g.Nz; k++ {
		u := st.U.At(4, 5, k)
		switch {
		case g.Sigma[k] <= hs.SigmaB:
			if u != 10 {
				t.Errorf("level %d (σ=%.2f): free-atmosphere wind changed to %v", k, g.Sigma[k], u)
			}
		default:
			if u >= 10 {
				t.Errorf("level %d (σ=%.2f): boundary-layer wind not damped (%v)", k, g.Sigma[k], u)
			}
			if u <= 0 {
				t.Errorf("level %d: wind overshot to %v", k, u)
			}
		}
	}
}

func TestApplyRelaxesTemperatureTowardTeq(t *testing.T) {
	g := grid.New(16, 10, 6)
	st := state.New(testBlock(g))
	InitialState(g, st) // starts at Teq + small perturbation
	hs := Standard()

	// Push a point's temperature far above equilibrium and relax hard.
	i0, j0, k0 := 4, 5, 5
	p := physics.PFromPs(physics.P0)
	tTil := physics.StandardTemperature(g.Sigma[k0])
	st.Phi.Set(i0, j0, k0, physics.PhiFromTemperature(400, p, tTil))
	before := physics.TemperatureFromPhi(st.Phi.At(i0, j0, k0), p, tTil)

	hs.Apply(g, st, 4*86400)
	after := physics.TemperatureFromPhi(st.Phi.At(i0, j0, k0), p, tTil)
	phi := math.Pi/2 - g.ThetaC[j0]
	pres := g.Sigma[k0]*(physics.P0-physics.Pt) + physics.Pt
	teq := hs.Teq(phi, pres)
	if math.Abs(after-teq) >= math.Abs(before-teq) {
		t.Errorf("relaxation did not approach Teq: |%v−%v| vs |%v−%v|", after, teq, before, teq)
	}
}

func TestApplyFixedPointAtEquilibrium(t *testing.T) {
	// A resting state at exactly Teq and ps = p0 is (nearly) a fixed point
	// of the forcing.
	g := grid.New(16, 10, 6)
	st := state.New(testBlock(g))
	hs := Standard()
	st.InitFromPhysical(g,
		func(lam, th, sig float64) float64 { return 0 },
		func(lam, th, sig float64) float64 { return 0 },
		func(lam, th, sig float64) float64 {
			p := sig*(physics.P0-physics.Pt) + physics.Pt
			return hs.Teq(math.Pi/2-th, p)
		},
		func(lam, th float64) float64 { return physics.P0 },
	)
	before := st.Clone()
	hs.Apply(g, st, 86400)
	if d := st.MaxAbsDiff(before); d > 1e-9 {
		t.Errorf("equilibrium state moved by %v under forcing", d)
	}
}

func TestInitialStateSane(t *testing.T) {
	g := grid.New(32, 16, 8)
	st := state.New(testBlock(g))
	InitialState(g, st)
	if !st.AllFinite() {
		t.Fatal("initial state not finite")
	}
	// Resting atmosphere.
	if field.MaxAbsOwned(st.U) > 1e-12 || field.MaxAbsOwned(st.V) > 1e-12 {
		t.Error("initial state not at rest")
	}
	// Physical temperatures.
	p := physics.PFromPs(physics.P0)
	for k := 0; k < g.Nz; k++ {
		tTil := physics.StandardTemperature(g.Sigma[k])
		for j := 0; j < g.Ny; j++ {
			tv := physics.TemperatureFromPhi(st.Phi.At(0, j, k), p, tTil)
			if tv < 150 || tv > 350 {
				t.Fatalf("initial T(%d,%d) = %v unphysical", j, k, tv)
			}
		}
	}
}
