package filter

import (
	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/topo"
)

// batchRow identifies one filtered row across the batched fields: fi indexes
// f3s, or len(f3s)+index into f2s (with k == 0).
type batchRow struct {
	fi   int
	j, k int
}

// batchScratch holds the reusable buffers of ApplyDistBatch. They grow
// lazily to the steady per-step sizes on the first distributed call and are
// reused afterwards, so the transpose round-trip performs no steady-state
// heap allocation.
type batchScratch struct {
	rows []batchRow
	send [][]float64
	recv [][]float64
	full [][]float64
}

// growSlots resizes a slice-of-buffers to n slots, reallocating only when
// the capacity is exceeded (which drops the retained inner buffers; they are
// regrown on use).
func growSlots(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		//cadyvet:allow first-call lazy growth to the communicator size; later calls reuse the slots
		return make([][]float64, n)
	}
	return s[:n]
}

// growBuf resizes one buffer to exactly n values, reallocating only when the
// capacity is exceeded. Contents are unspecified — every caller overwrites
// the full length before reading it.
func growBuf(s []float64, n int) []float64 {
	if cap(s) < n {
		//cadyvet:allow first-call lazy growth to the steady payload size; later calls reuse the buffer
		return make([]float64, n)
	}
	return s[:n]
}

// batchSeg returns the x-segment [i0, i0+n) of one catalogued row.
func batchSeg(f3s []*field.F3, f2s []*field.F2, id batchRow, i0, n int) []float64 {
	if id.fi < len(f3s) {
		fld := f3s[id.fi]
		base := fld.Index(i0, id.j, id.k)
		return fld.Data[base : base+n]
	}
	fld := f2s[id.fi-len(f3s)]
	base := fld.Index(i0, id.j)
	return fld.Data[base : base+n]
}

// ApplyDistBatch filters several 3-D fields and several 2-D fields in ONE
// transpose round-trip: the x-segments of all fields' filtered rows are
// concatenated into the same Alltoall payloads. A production X-Y
// implementation batches this way — it pays the two Alltoalls once per
// tendency instead of once per component, reducing the x-collective
// synchronization count by the number of components.
//
// Numerically identical to calling ApplyDist per field (the per-row FFTs do
// not interact). Returns the number of complete rows this rank filtered.
//
//cadyvet:allocfree
func (f *Filter) ApplyDistBatch(t *topo.Topology, f3s []*field.F3, f2s []*field.F2) int {
	rx := t.RowX
	if rx == nil || rx.Size() == 1 {
		rows := 0
		for _, fld := range f3s {
			rows += f.Apply(fld, fld.B.Owned())
		}
		for _, fld := range f2s {
			rows += f.Apply2(fld, fld.B.Owned())
		}
		return rows
	}
	prev := t.World.SetCategory(comm.CatCollectiveX)
	defer t.World.SetCategory(prev)

	nx := f.g.Nx
	px := rx.Size()

	// Row catalog: every filtered (field, j, k) row across all fields, in a
	// deterministic order shared by all members of the x communicator
	// (blocks share J/K ranges along x).
	rows := f.batch.rows[:0]
	for fi, fld := range f3s {
		b := fld.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				if f.Active(j) {
					//cadyvet:allow grows to the steady per-step row count on the first call; later calls reuse the backing array
					rows = append(rows, batchRow{fi, j, k})
				}
			}
		}
	}
	for fi, fld := range f2s {
		b := fld.B
		for j := b.J0; j < b.J1; j++ {
			if f.Active(j) {
				//cadyvet:allow grows to the steady per-step row count on the first call; later calls reuse the backing array
				rows = append(rows, batchRow{len(f3s) + fi, j, 0})
			}
		}
	}
	f.batch.rows = rows
	nrows := len(rows)
	if nrows == 0 {
		return 0
	}

	b0 := t.Block
	nxLoc := b0.I1 - b0.I0
	myLo, myHi := rx.Rank()*nrows/px, (rx.Rank()+1)*nrows/px

	// Transpose 1: ship my x-segment of every row to the row's owner.
	send := growSlots(f.batch.send, px)
	recv := growSlots(f.batch.recv, px)
	f.batch.send, f.batch.recv = send, recv
	for r := 0; r < px; r++ {
		rLo, rHi := r*nrows/px, (r+1)*nrows/px
		xSeg := (r+1)*nx/px - r*nx/px
		send[r] = growBuf(send[r], (rHi-rLo)*nxLoc)
		for q := rLo; q < rHi; q++ {
			copy(send[r][(q-rLo)*nxLoc:], batchSeg(f3s, f2s, rows[q], b0.I0, nxLoc))
		}
		recv[r] = growBuf(recv[r], (myHi-myLo)*xSeg)
	}
	rx.Alltoall(send, recv)

	// Assemble, filter, disassemble.
	full := growSlots(f.batch.full, myHi-myLo)
	f.batch.full = full
	for q := range full {
		full[q] = growBuf(full[q], nx)
	}
	for r := 0; r < px; r++ {
		i0 := r * nx / px
		segLen := (r+1)*nx/px - i0
		for q := myLo; q < myHi; q++ {
			copy(full[q-myLo][i0:i0+segLen], recv[r][(q-myLo)*segLen:])
		}
	}
	for q := myLo; q < myHi; q++ {
		f.FilterRow(full[q-myLo], rows[q].j)
	}

	// Transpose 2: scatter filtered segments back.
	for r := 0; r < px; r++ {
		i0 := r * nx / px
		segLen := (r+1)*nx/px - i0
		send[r] = growBuf(send[r], (myHi-myLo)*segLen)
		for q := myLo; q < myHi; q++ {
			copy(send[r][(q-myLo)*segLen:], full[q-myLo][i0:i0+segLen])
		}
		rLo, rHi := r*nrows/px, (r+1)*nrows/px
		recv[r] = growBuf(recv[r], (rHi-rLo)*nxLoc)
	}
	rx.Alltoall(send, recv)
	for r := 0; r < px; r++ {
		rLo, rHi := r*nrows/px, (r+1)*nrows/px
		for q := rLo; q < rHi; q++ {
			copy(batchSeg(f3s, f2s, rows[q], b0.I0, nxLoc), recv[r][(q-rLo)*nxLoc:(q-rLo)*nxLoc+nxLoc])
		}
	}
	return myHi - myLo
}
