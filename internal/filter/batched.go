package filter

import (
	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/topo"
)

// ApplyDistBatch filters several 3-D fields and several 2-D fields in ONE
// transpose round-trip: the x-segments of all fields' filtered rows are
// concatenated into the same Alltoall payloads. A production X-Y
// implementation batches this way — it pays the two Alltoalls once per
// tendency instead of once per component, reducing the x-collective
// synchronization count by the number of components.
//
// Numerically identical to calling ApplyDist per field (the per-row FFTs do
// not interact). Returns the number of complete rows this rank filtered.
func (f *Filter) ApplyDistBatch(t *topo.Topology, f3s []*field.F3, f2s []*field.F2) int {
	rx := t.RowX
	if rx == nil || rx.Size() == 1 {
		rows := 0
		for _, fld := range f3s {
			rows += f.Apply(fld, fld.B.Owned())
		}
		for _, fld := range f2s {
			rows += f.Apply2(fld, fld.B.Owned())
		}
		return rows
	}
	prev := t.World.SetCategory(comm.CatCollectiveX)
	defer t.World.SetCategory(prev)

	nx := f.g.Nx
	px := rx.Size()

	// Row catalog: every filtered (field, j, k) row across all fields, in a
	// deterministic order shared by all members of the x communicator
	// (blocks share J/K ranges along x).
	type rowID struct {
		fi   int // index into f3s, or len(f3s)+index into f2s
		j, k int
	}
	var rows []rowID
	for fi, fld := range f3s {
		b := fld.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				if f.Active(j) {
					rows = append(rows, rowID{fi, j, k})
				}
			}
		}
	}
	for fi, fld := range f2s {
		b := fld.B
		for j := b.J0; j < b.J1; j++ {
			if f.Active(j) {
				rows = append(rows, rowID{len(f3s) + fi, j, 0})
			}
		}
	}
	nrows := len(rows)
	if nrows == 0 {
		return 0
	}

	b0 := t.Block
	nxLoc := b0.I1 - b0.I0
	rowLo := func(r int) int { return r * nrows / px }
	rowHi := func(r int) int { return (r + 1) * nrows / px }
	xSeg := func(r int) int { return (r+1)*nx/px - r*nx/px }
	myLo, myHi := rowLo(rx.Rank()), rowHi(rx.Rank())

	segOf := func(id rowID, i0, n int) []float64 {
		if id.fi < len(f3s) {
			fld := f3s[id.fi]
			base := fld.Index(i0, id.j, id.k)
			return fld.Data[base : base+n]
		}
		fld := f2s[id.fi-len(f3s)]
		base := fld.Index(i0, id.j)
		return fld.Data[base : base+n]
	}

	// Transpose 1: ship my x-segment of every row to the row's owner.
	send := make([][]float64, px)
	recv := make([][]float64, px)
	for r := 0; r < px; r++ {
		cnt := rowHi(r) - rowLo(r)
		send[r] = make([]float64, cnt*nxLoc)
		for q := rowLo(r); q < rowHi(r); q++ {
			copy(send[r][(q-rowLo(r))*nxLoc:], segOf(rows[q], b0.I0, nxLoc))
		}
		recv[r] = make([]float64, (myHi-myLo)*xSeg(r))
	}
	rx.Alltoall(send, recv)

	// Assemble, filter, disassemble.
	full := make([][]float64, myHi-myLo)
	for q := range full {
		full[q] = make([]float64, nx)
	}
	for r := 0; r < px; r++ {
		i0 := r * nx / px
		segLen := xSeg(r)
		for q := myLo; q < myHi; q++ {
			copy(full[q-myLo][i0:i0+segLen], recv[r][(q-myLo)*segLen:])
		}
	}
	for q := myLo; q < myHi; q++ {
		f.FilterRow(full[q-myLo], rows[q].j)
	}

	// Transpose 2: scatter filtered segments back.
	for r := 0; r < px; r++ {
		i0 := r * nx / px
		segLen := xSeg(r)
		send[r] = make([]float64, (myHi-myLo)*segLen)
		for q := myLo; q < myHi; q++ {
			copy(send[r][(q-myLo)*segLen:], full[q-myLo][i0:i0+segLen])
		}
		recv[r] = make([]float64, (rowHi(r)-rowLo(r))*nxLoc)
	}
	rx.Alltoall(send, recv)
	for r := 0; r < px; r++ {
		for q := rowLo(r); q < rowHi(r); q++ {
			copy(segOf(rows[q], b0.I0, nxLoc), recv[r][(q-rowLo(r))*nxLoc:(q-rowLo(r))*nxLoc+nxLoc])
		}
	}
	return myHi - myLo
}
