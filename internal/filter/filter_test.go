package filter

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"cadycore/internal/fft"

	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/topo"
)

func testGrid() *grid.Grid { return grid.New(32, 16, 4) }

func fullBlock(g *grid.Grid) field.Block {
	return field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
	}
}

func TestCutoffProfile(t *testing.T) {
	g := testGrid()
	f := New(g, 60)
	half := g.Nx / 2
	for j := 0; j < g.Ny; j++ {
		m := f.MMax(j)
		if m < 1 || m > half {
			t.Errorf("row %d: m_max = %d outside [1, %d]", j, m, half)
		}
		lat := math.Abs(g.LatitudeDeg(j))
		if lat < 60 && m != half {
			t.Errorf("row %d (lat %.1f) should be unfiltered, m_max = %d", j, lat, m)
		}
		if lat > 60 && m >= half {
			t.Errorf("row %d (lat %.1f) should be filtered", j, lat)
		}
	}
	// Monotone: rows closer to a pole keep fewer waves.
	for j := 1; j < g.Ny/2; j++ {
		if f.MMax(j-1) > f.MMax(j) {
			t.Errorf("m_max not monotone toward the north pole at %d", j)
		}
	}
}

func TestGhostRowCutoffMirrors(t *testing.T) {
	g := testGrid()
	f := New(g, 60)
	if f.MMax(-1) != f.MMax(0) || f.MMax(-2) != f.MMax(1) {
		t.Error("north ghost cutoffs must mirror")
	}
	if f.MMax(g.Ny) != f.MMax(g.Ny-1) || f.MMax(g.Ny+1) != f.MMax(g.Ny-2) {
		t.Error("south ghost cutoffs must mirror")
	}
}

func TestLowWavesPassExactly(t *testing.T) {
	g := testGrid()
	f := New(g, 60)
	j := 0 // most filtered row
	mKeep := f.MMax(j)
	row := make([]float64, g.Nx)
	for i := range row {
		row[i] = math.Cos(2 * math.Pi * float64(i) / float64(g.Nx) * float64(mKeep))
	}
	want := append([]float64(nil), row...)
	f.FilterRow(row, j)
	for i := range row {
		if math.Abs(row[i]-want[i]) > 1e-10 {
			t.Fatalf("retained wave distorted at %d: %v vs %v", i, row[i], want[i])
		}
	}
}

func TestHighWavesRemoved(t *testing.T) {
	g := testGrid()
	f := New(g, 60)
	j := 0
	m := f.MMax(j) + 1
	row := make([]float64, g.Nx)
	for i := range row {
		row[i] = math.Sin(2 * math.Pi * float64(i) / float64(g.Nx) * float64(m))
	}
	f.FilterRow(row, j)
	for i := range row {
		if math.Abs(row[i]) > 1e-10 {
			t.Fatalf("wave m=%d not removed: row[%d]=%v", m, i, row[i])
		}
	}
}

func TestIdempotent(t *testing.T) {
	g := testGrid()
	f := New(g, 60)
	rng := rand.New(rand.NewSource(3))
	for _, j := range []int{0, 1, g.Ny - 1} {
		row := make([]float64, g.Nx)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		f.FilterRow(row, j)
		once := append([]float64(nil), row...)
		f.FilterRow(row, j)
		for i := range row {
			if math.Abs(row[i]-once[i]) > 1e-12 {
				t.Fatalf("row %d: filter not idempotent at %d", j, i)
			}
		}
	}
}

func TestUnfilteredRowsCostNothing(t *testing.T) {
	g := testGrid()
	f := New(g, 60)
	fld := field.NewF3(fullBlock(g))
	// Rect covering only equatorial rows.
	r := field.Rect{I0: 0, I1: g.Nx, J0: g.Ny/2 - 1, J1: g.Ny/2 + 1, K0: 0, K1: 1}
	if rows := f.Apply(fld, r); rows != 0 {
		t.Errorf("equatorial rows transformed: %d", rows)
	}
}

func TestApplyMatchesRowFilter(t *testing.T) {
	g := testGrid()
	f := New(g, 60)
	rng := rand.New(rand.NewSource(4))
	fld := field.NewF3(fullBlock(g))
	for i := range fld.Data {
		fld.Data[i] = rng.NormFloat64()
	}
	ref := fld.Clone()
	f.Apply(fld, fullBlock(g).Owned())
	row := make([]float64, g.Nx)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			base := ref.Index(0, j, k)
			copy(row, ref.Data[base:base+g.Nx])
			f.FilterRow(row, j)
			for i := 0; i < g.Nx; i++ {
				if fld.At(i, j, k) != row[i] {
					t.Fatalf("Apply differs from FilterRow at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	g := testGrid()
	rng := rand.New(rand.NewSource(5))
	global := make([]float64, g.Nx*g.Ny*g.Nz)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	at := func(i, j, k int) float64 { return global[(k*g.Ny+j)*g.Nx+i] }

	// Serial reference.
	ser := field.NewF3(fullBlock(g))
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				ser.Set(i, j, k, at(i, j, k))
			}
		}
	}
	fser := New(g, 60)
	fser.Apply(ser, fullBlock(g).Owned())

	for _, pg := range [][2]int{{2, 1}, {4, 2}, {2, 4}} {
		px, py := pg[0], pg[1]
		w := comm.NewWorld(px*py, comm.Zero())
		w.Run(func(c *comm.Comm) {
			tp := topo.New(c, g, px, py, 1, 3, 1, 1)
			fld := field.NewF3(tp.Block)
			b := tp.Block
			for k := b.K0; k < b.K1; k++ {
				for j := b.J0; j < b.J1; j++ {
					for i := b.I0; i < b.I1; i++ {
						fld.Set(i, j, k, at(i, j, k))
					}
				}
			}
			f := New(g, 60)
			f.ApplyDist(tp, fld)
			for k := b.K0; k < b.K1; k++ {
				for j := b.J0; j < b.J1; j++ {
					for i := b.I0; i < b.I1; i++ {
						if got, want := fld.At(i, j, k), ser.At(i, j, k); got != want {
							t.Fatalf("px=%d py=%d: (%d,%d,%d) got %v want %v", px, py, i, j, k, got, want)
						}
					}
				}
			}
		})
		// The distributed filter must actually communicate (px > 1).
		if w.Stats().MsgsByCat[comm.CatCollectiveX] == 0 {
			t.Errorf("px=%d: distributed filter sent no x-collective messages", px)
		}
	}
}

func TestDistributed2DMatchesSerial(t *testing.T) {
	g := testGrid()
	rng := rand.New(rand.NewSource(6))
	global := make([]float64, g.Nx*g.Ny)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	at := func(i, j int) float64 { return global[j*g.Nx+i] }

	ser := field.NewF2(fullBlock(g))
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			ser.Set(i, j, at(i, j))
		}
	}
	fser := New(g, 60)
	fser.Apply2(ser, fullBlock(g).Owned())

	const px, py = 4, 2
	w := comm.NewWorld(px*py, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := topo.New(c, g, px, py, 1, 3, 1, 1)
		fld := field.NewF2(tp.Block)
		b := tp.Block
		for j := b.J0; j < b.J1; j++ {
			for i := b.I0; i < b.I1; i++ {
				fld.Set(i, j, at(i, j))
			}
		}
		f := New(g, 60)
		f.ApplyDist2(tp, fld)
		for j := b.J0; j < b.J1; j++ {
			for i := b.I0; i < b.I1; i++ {
				if got, want := fld.At(i, j), ser.At(i, j); got != want {
					t.Fatalf("(%d,%d) got %v want %v", i, j, got, want)
				}
			}
		}
	})
}

func TestSerialFilterNoComm(t *testing.T) {
	// The Y-Z configuration's filter must move zero bytes (Theorem 4.1 with
	// η_x = 0: the whole point of choosing p_x = 1).
	g := testGrid()
	w := comm.NewWorld(2, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := topo.New(c, g, 1, 2, 1, 3, 1, 1)
		fld := field.NewF3(tp.Block)
		f := New(g, 60)
		f.ApplyDist(tp, fld) // falls back to the serial path when RowX is trivial
	})
	if got := w.Stats().MsgsByCat[comm.CatCollectiveX]; got != 0 {
		t.Errorf("p_x = 1 filter sent %d messages, want 0", got)
	}
}

func TestFilterTruncatesSpectrum(t *testing.T) {
	// Structural link between the filter and the spectral diagnostic: after
	// filtering, a polar row has no energy above its cutoff.
	g := testGrid()
	f := New(g, 60)
	rng := rand.New(rand.NewSource(9))
	fld := field.NewF3(fullBlock(g))
	for i := range fld.Data {
		fld.Data[i] = rng.NormFloat64()
	}
	f.Apply(fld, fullBlock(g).Owned())
	j := 0 // strongly filtered row
	row := make([]float64, g.Nx)
	base := fld.Index(0, j, 0)
	copy(row, fld.Data[base:base+g.Nx])
	coef := fft.NewPlan(g.Nx).ForwardReal(row, nil)
	for m := f.MMax(j) + 1; m <= g.Nx/2; m++ {
		if a := cmplx.Abs(coef[m]); a > 1e-10 {
			t.Errorf("energy above cutoff at m=%d: %v", m, a)
		}
	}
}

func TestBatchedMatchesPerField(t *testing.T) {
	// One transpose round-trip for all fields must equal per-field
	// filtering bitwise, while entering fewer collectives.
	g := testGrid()
	rng := rand.New(rand.NewSource(10))
	global := make([]float64, 4*g.Nx*g.Ny*g.Nz)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	at := func(f, i, j, k int) float64 { return global[((f*g.Nz+k)*g.Ny+j)*g.Nx+i] }

	const px, py = 4, 2
	type result struct {
		data  [][]float64
		colls int64
	}
	runMode := func(batched bool) result {
		w := comm.NewWorld(px*py, comm.Zero())
		out := make([][]float64, px*py)
		w.Run(func(c *comm.Comm) {
			tp := topo.New(c, g, px, py, 1, 3, 1, 1)
			b := tp.Block
			mk := func(fi int) *field.F3 {
				fld := field.NewF3(b)
				for k := b.K0; k < b.K1; k++ {
					for j := b.J0; j < b.J1; j++ {
						for i := b.I0; i < b.I1; i++ {
							fld.Set(i, j, k, at(fi, i, j, k))
						}
					}
				}
				return fld
			}
			a, bb, cc := mk(0), mk(1), mk(2)
			f2 := field.NewF2(b)
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					f2.Set(i, j, at(3, i, j, 0))
				}
			}
			f := New(g, 60)
			if batched {
				f.ApplyDistBatch(tp, []*field.F3{a, bb, cc}, []*field.F2{f2})
			} else {
				f.ApplyDist(tp, a)
				f.ApplyDist(tp, bb)
				f.ApplyDist(tp, cc)
				f.ApplyDist2(tp, f2)
			}
			var flat []float64
			for _, fld := range []*field.F3{a, bb, cc} {
				for k := b.K0; k < b.K1; k++ {
					for j := b.J0; j < b.J1; j++ {
						for i := b.I0; i < b.I1; i++ {
							flat = append(flat, fld.At(i, j, k))
						}
					}
				}
			}
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					flat = append(flat, f2.At(i, j))
				}
			}
			out[c.Rank()] = flat
		})
		return result{out, w.Stats().Collectives}
	}
	perField := runMode(false)
	batched := runMode(true)
	for r := range perField.data {
		for i := range perField.data[r] {
			if perField.data[r][i] != batched.data[r][i] {
				t.Fatalf("rank %d elem %d: batched %v != per-field %v",
					r, i, batched.data[r][i], perField.data[r][i])
			}
		}
	}
	if batched.colls*2 > perField.colls {
		t.Errorf("batched entered %d collectives, per-field %d — batching should cut them ~4x",
			batched.colls, perField.colls)
	}
}

func TestStableDtFilterRelaxesCFL(t *testing.T) {
	g := grid.New(128, 64, 4) // fine mesh: strong polar clustering
	f := New(g, 60)
	unf, fil := f.StableDt(100)
	if unf <= 0 || fil <= 0 {
		t.Fatalf("degenerate CFL: %v %v", unf, fil)
	}
	// Filtering must relax the limit substantially: the polar row keeps
	// only ~sinθ/sinθc of the wavenumbers.
	if fil < 3*unf {
		t.Errorf("filter relaxed CFL only %vx (unfiltered %v s, filtered %v s)", fil/unf, unf, fil)
	}
	// The filtered limit is set near the cutoff latitude: effective spacing
	// ≈ a·sin(30° colat)·Δλ.
	approx := 6.371e6 * math.Sin(30*math.Pi/180) * g.DLambda / 100
	if fil < 0.5*approx || fil > 2*approx {
		t.Errorf("filtered CFL %v s far from the cutoff-latitude estimate %v s", fil, approx)
	}
}

func TestFilterRowMatchesComplexReference(t *testing.T) {
	// The rfft fast path must reproduce the original full-complex filter
	// (forward, zero m ∈ [mmax+1, Nx−mmax−1], inverse) to 1e-12.
	g := testGrid()
	f := New(g, 60)
	rng := rand.New(rand.NewSource(21))
	plan := fft.NewPlan(g.Nx)
	for _, j := range []int{0, 1, 2, g.Ny - 1} {
		row := make([]float64, g.Nx)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		ref := append([]float64(nil), row...)
		coef := plan.ForwardReal(ref, nil)
		for m := f.MMax(j) + 1; m <= g.Nx-f.MMax(j)-1; m++ {
			coef[m] = 0
		}
		plan.InverseToReal(coef, ref)

		f.FilterRow(row, j)
		for i := range row {
			if math.Abs(row[i]-ref[i]) > 1e-12 {
				t.Fatalf("row %d: rfft path differs from complex reference at %d: %v vs %v",
					j, i, row[i], ref[i])
			}
		}
	}
}

func TestFilterRowZeroAlloc(t *testing.T) {
	// The steady-state step depends on row filtering being allocation-free.
	g := testGrid()
	f := New(g, 60)
	row := make([]float64, g.Nx)
	for i := range row {
		row[i] = math.Sin(float64(i))
	}
	allocs := testing.AllocsPerRun(200, func() {
		f.FilterRow(row, 0)
	})
	if allocs != 0 {
		t.Errorf("FilterRow allocated %v per op, want 0", allocs)
	}
}

func TestApplyZeroAlloc(t *testing.T) {
	g := testGrid()
	f := New(g, 60)
	fld := field.NewF3(fullBlock(g))
	for i := range fld.Data {
		fld.Data[i] = math.Cos(float64(i))
	}
	rect := fullBlock(g).Owned()
	allocs := testing.AllocsPerRun(20, func() {
		f.Apply(fld, rect)
	})
	if allocs != 0 {
		t.Errorf("Apply allocated %v per op, want 0", allocs)
	}
}
