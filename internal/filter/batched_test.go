package filter

import (
	"math"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/topo"
)

// TestApplyDistBatchScratchReuse pins the grown-once transpose scratch that
// the //cadyvet:allow waivers in batched.go promise: the first distributed
// call grows the catalog and payload buffers, every later call reuses the
// same backing arrays and produces bitwise-identical results. (The
// single-rank zero-alloc tests never reach this path — it only runs with
// px > 1 — so the reuse needs its own regression.)
func TestApplyDistBatchScratchReuse(t *testing.T) {
	g := testGrid()
	const px = 4
	w := comm.NewWorld(px, comm.Zero())
	failed := make([]string, px)
	w.Run(func(c *comm.Comm) {
		tp := topo.New(c, g, px, 1, 1, 3, 1, 1)
		b := tp.Block
		fld := field.NewF3(b)
		f2 := field.NewF2(b)
		fill := func() {
			for k := b.K0; k < b.K1; k++ {
				for j := b.J0; j < b.J1; j++ {
					for i := b.I0; i < b.I1; i++ {
						fld.Set(i, j, k, math.Sin(float64(i*7+j*3+k)))
					}
				}
			}
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					f2.Set(i, j, math.Cos(float64(i-2*j)))
				}
			}
		}
		head := func(s []float64) *float64 {
			if len(s) == 0 {
				return nil
			}
			return &s[0]
		}

		f := New(g, 60)
		fill()
		f.ApplyDistBatch(tp, []*field.F3{fld}, []*field.F2{f2})
		first := append([]float64(nil), fld.Data...)
		first2 := append([]float64(nil), f2.Data...)
		rowsPtr := &f.batch.rows[0]
		var sendPtrs, recvPtrs, fullPtrs []*float64
		for _, s := range f.batch.send {
			sendPtrs = append(sendPtrs, head(s))
		}
		for _, s := range f.batch.recv {
			recvPtrs = append(recvPtrs, head(s))
		}
		for _, s := range f.batch.full {
			fullPtrs = append(fullPtrs, head(s))
		}

		fill()
		f.ApplyDistBatch(tp, []*field.F3{fld}, []*field.F2{f2})
		for i, v := range fld.Data {
			if v != first[i] {
				failed[c.Rank()] = "second call is not bitwise identical on the 3-D field"
				return
			}
		}
		for i, v := range f2.Data {
			if v != first2[i] {
				failed[c.Rank()] = "second call is not bitwise identical on the 2-D field"
				return
			}
		}
		if &f.batch.rows[0] != rowsPtr {
			failed[c.Rank()] = "row catalog was reallocated on the second call"
			return
		}
		for i, s := range f.batch.send {
			if head(s) != sendPtrs[i] {
				failed[c.Rank()] = "send buffer was reallocated on the second call"
				return
			}
		}
		for i, s := range f.batch.recv {
			if head(s) != recvPtrs[i] {
				failed[c.Rank()] = "recv buffer was reallocated on the second call"
				return
			}
		}
		for i, s := range f.batch.full {
			if head(s) != fullPtrs[i] {
				failed[c.Rank()] = "row assembly buffer was reallocated on the second call"
				return
			}
		}
	})
	for r, msg := range failed {
		if msg != "" {
			t.Errorf("rank %d: %s", r, msg)
		}
	}
}
