// Package filter implements the Fourier polar filtering operator F̃ of the
// dynamical core (paper Sections 3 and 4.2). High-frequency zonal waves are
// removed from tendencies at high latitudes to relax the CFL restriction
// caused by the convergence of meridians near the poles.
//
// Two execution paths exist, mirroring the paper's analysis:
//
//   - Serial per-latitude filtering when a rank owns a full latitude circle
//     (p_x = 1, the Y-Z decomposition): no communication at all. This is the
//     configuration the communication-avoiding algorithm selects (Section
//     4.2.1, Theorem 4.1 with η_x = 0).
//   - Distributed filtering when x is decomposed (the X-Y decomposition):
//     a transpose (Alltoall on the x communicator) gathers complete rows,
//     each rank filters its share, and a second transpose scatters them
//     back. This is the collective whose cost dominates the lower bound
//     (Theorem 4.1 with η_x = 1) and which the paper's scheme eliminates.
package filter

import (
	"math"

	"cadycore/internal/comm"
	"cadycore/internal/fft"
	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/topo"
)

// Filter holds the per-latitude wavenumber cutoffs and the FFT plan. The
// transform runs on the real-input half-spectrum fast path (internal/fft
// RealPlan), which does about half the complex work per row; the scratch
// buffers below make every row transform allocation-free.
//
// A Filter is NOT safe for concurrent use: FilterRow and the Apply* methods
// share the per-filter scratch. Give each goroutine its own Filter (plans
// are cheap relative to a field) when filtering in parallel.
type Filter struct {
	g *grid.Grid
	// mmax[j] is the highest zonal wavenumber retained at latitude row j;
	// rows with mmax[j] == Nx/2 are not filtered at all.
	mmax    []int
	rp      *fft.RealPlan
	spec    []complex128 // half spectrum, Nx/2+1
	scratch []complex128 // RealPlan work space
	batch   batchScratch // reusable ApplyDistBatch transpose buffers
}

// New builds a filter that leaves latitudes equatorward of cutoffLatDeg
// untouched and filters poleward rows to m ≤ (Nx/2)·sinθ/sin θ_c (at least
// wavenumber 1 is always kept). The IAP-AGCM filter strength profile has the
// same shape; 60° is a realistic default cutoff.
func New(g *grid.Grid, cutoffLatDeg float64) *Filter {
	rp := fft.NewRealPlan(g.Nx)
	f := &Filter{
		g: g, rp: rp, mmax: make([]int, g.Ny),
		spec:    make([]complex128, rp.SpecLen()),
		scratch: make([]complex128, rp.ScratchLen()),
	}
	sinc := math.Sin((90 - cutoffLatDeg) * math.Pi / 180) // sin of cutoff colatitude
	half := g.Nx / 2
	for j := 0; j < g.Ny; j++ {
		s := g.SinC[j]
		if s >= sinc {
			f.mmax[j] = half
			continue
		}
		m := int(float64(half) * s / sinc)
		if m < 1 {
			m = 1
		}
		f.mmax[j] = m
	}
	return f
}

// StableDt returns the largest time step (seconds) a signal of the given
// phase speed (m/s) admits under a unit-Courant zonal CFL condition, with
// and without this filter. Without filtering the polar rows dominate
// (Δx = a·sinθ·Δλ shrinks toward the poles); with filtering, a row that
// keeps only m ≤ m_max behaves like a row with effective spacing
// Δx·(Nx/2)/m_max, so the cutoff latitude sets the limit — the
// quantitative version of the paper's "severe CFL restriction … Fourier
// filtering" discussion (Section 2.2).
func (f *Filter) StableDt(speed float64) (unfiltered, filtered float64) {
	g := f.g
	const a = 6.371e6
	minDx := a * g.SinC[0] * g.DLambda // smallest zonal spacing (polar row)
	minEff := 1e30
	half := float64(g.Nx / 2)
	for j := 0; j < g.Ny; j++ {
		dx := a * g.SinC[j] * g.DLambda
		eff := dx * half / float64(f.mmax[j])
		if dx < minDx {
			minDx = dx
		}
		if eff < minEff {
			minEff = eff
		}
	}
	return minDx / speed, minEff / speed
}

// MMax returns the retained-wavenumber cutoff for (possibly ghost) latitude
// row j; ghost rows beyond a pole use their mirror row's cutoff, consistent
// with the mirror boundary fill.
func (f *Filter) MMax(j int) int {
	ny := f.g.Ny
	if j < 0 {
		j = -1 - j
	}
	if j >= ny {
		j = 2*ny - 1 - j
	}
	return f.mmax[j]
}

// Active reports whether row j is filtered at all.
func (f *Filter) Active(j int) bool { return f.MMax(j) < f.g.Nx/2 }

// FilterRow low-passes one full latitude row in place (len = Nx). It is
// allocation-free but uses the Filter's scratch, so it must not be called
// concurrently on the same Filter.
//
//cadyvet:allocfree
func (f *Filter) FilterRow(row []float64, j int) {
	mmax := f.MMax(j)
	nx := f.g.Nx
	if mmax >= nx/2 {
		return
	}
	f.rp.Forward(row, f.spec, f.scratch)
	// Zeroing half-spectrum coefficient k kills wavenumbers k and Nx−k at
	// once — the same set the full-spectrum loop m ∈ [mmax+1, Nx−mmax−1]
	// removed.
	for m := mmax + 1; m <= nx/2; m++ {
		f.spec[m] = 0
	}
	f.rp.Inverse(f.spec, row, f.scratch)
}

// Apply filters every (j, k) row of fld inside rect. The field's storage
// must span the full longitude circle (p_x = 1); rows whose latitude is
// below the cutoff are skipped at zero cost. Returns the number of
// transformed rows (for compute accounting: each costs ~2·Nx·log2(Nx)).
//
//cadyvet:allocfree
func (f *Filter) Apply(fld *field.F3, rect field.Rect) int {
	if !fld.B.OwnsFullX() {
		panic("filter: serial Apply requires a full longitude circle per rank")
	}
	nx := f.g.Nx
	rows := 0
	for k := rect.K0; k < rect.K1; k++ {
		for j := rect.J0; j < rect.J1; j++ {
			if !f.Active(j) {
				continue
			}
			base := fld.Index(0, j, k)
			f.FilterRow(fld.Data[base:base+nx], j)
			rows++
		}
	}
	return rows
}

// Apply2 filters a 2-D field the same way.
//
//cadyvet:allocfree
func (f *Filter) Apply2(fld *field.F2, rect field.Rect) int {
	if !fld.B.OwnsFullX() {
		panic("filter: serial Apply2 requires a full longitude circle per rank")
	}
	rect = rect.Flat2D()
	nx := f.g.Nx
	rows := 0
	for j := rect.J0; j < rect.J1; j++ {
		if !f.Active(j) {
			continue
		}
		base := fld.Index(0, j)
		f.FilterRow(fld.Data[base:base+nx], j)
		rows++
	}
	return rows
}

// ApplyDist filters the owned region of fld when x is decomposed: the rank
// row (t.RowX) transposes x-segments so each member holds complete latitude
// rows, filters them, and transposes back. Communication is attributed to
// comm.CatCollectiveX. Returns the number of transformed rows on this rank
// after the transpose.
//
// Only rows that are actually filtered (poleward of the cutoff) enter the
// transpose, mirroring how a production implementation only communicates
// filtered latitudes.
func (f *Filter) ApplyDist(t *topo.Topology, fld *field.F3) int {
	rx := t.RowX
	if rx == nil || rx.Size() == 1 {
		return f.Apply(fld, fld.B.Owned())
	}
	prev := t.World.SetCategory(comm.CatCollectiveX)
	defer t.World.SetCategory(prev)

	b := fld.B
	nx := f.g.Nx
	px := rx.Size()
	nxLoc := b.I1 - b.I0

	// Enumerate the filtered rows of the owned region in (k, j) order; every
	// member of the x row has the same list because blocks share (J, K).
	type rowID struct{ j, k int }
	var rows []rowID
	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			if f.Active(j) {
				rows = append(rows, rowID{j, k})
			}
		}
	}
	nrows := len(rows)
	if nrows == 0 {
		return 0
	}

	// Row q is processed by x-rank owner(q) = q·px/nrows block partition.
	rowLo := func(r int) int { return r * nrows / px }
	rowHi := func(r int) int { return (r + 1) * nrows / px }

	// Transpose 1: send my x segment of each row to that row's owner. Peer r
	// owns x range [r·nx/px, (r+1)·nx/px), whose length can differ from mine
	// by one when px does not divide nx.
	xSeg := func(r int) int { return (r+1)*nx/px - r*nx/px }
	myLo, myHi := rowLo(rx.Rank()), rowHi(rx.Rank())
	send := make([][]float64, px)
	recv := make([][]float64, px)
	for r := 0; r < px; r++ {
		cnt := rowHi(r) - rowLo(r)
		send[r] = make([]float64, cnt*nxLoc)
		for q := rowLo(r); q < rowHi(r); q++ {
			base := fld.Index(b.I0, rows[q].j, rows[q].k)
			copy(send[r][(q-rowLo(r))*nxLoc:], fld.Data[base:base+nxLoc])
		}
		recv[r] = make([]float64, (myHi-myLo)*xSeg(r))
	}
	rx.Alltoall(send, recv)

	// Assemble my complete rows and filter them.
	full := make([][]float64, myHi-myLo)
	for q := range full {
		full[q] = make([]float64, nx)
	}
	for r := 0; r < px; r++ {
		i0 := r * nx / px
		segLen := xSeg(r)
		for q := myLo; q < myHi; q++ {
			copy(full[q-myLo][i0:i0+segLen], recv[r][(q-myLo)*segLen:])
		}
	}
	for q := myLo; q < myHi; q++ {
		f.FilterRow(full[q-myLo], rows[q].j)
	}

	// Transpose 2: scatter filtered segments back.
	for r := 0; r < px; r++ {
		i0 := r * nx / px
		segLen := xSeg(r)
		send[r] = make([]float64, (myHi-myLo)*segLen)
		for q := myLo; q < myHi; q++ {
			copy(send[r][(q-myLo)*segLen:], full[q-myLo][i0:i0+segLen])
		}
		recv[r] = make([]float64, (rowHi(r)-rowLo(r))*nxLoc)
	}
	rx.Alltoall(send, recv)
	for r := 0; r < px; r++ {
		for q := rowLo(r); q < rowHi(r); q++ {
			base := fld.Index(b.I0, rows[q].j, rows[q].k)
			copy(fld.Data[base:base+nxLoc], recv[r][(q-rowLo(r))*nxLoc:(q-rowLo(r))*nxLoc+nxLoc])
		}
	}
	return myHi - myLo
}

// ApplyDist2 is ApplyDist for 2-D fields.
func (f *Filter) ApplyDist2(t *topo.Topology, fld *field.F2) int {
	rx := t.RowX
	if rx == nil || rx.Size() == 1 {
		return f.Apply2(fld, fld.B.Owned())
	}
	prev := t.World.SetCategory(comm.CatCollectiveX)
	defer t.World.SetCategory(prev)

	b := fld.B
	nx := f.g.Nx
	px := rx.Size()
	nxLoc := b.I1 - b.I0

	var rows []int
	for j := b.J0; j < b.J1; j++ {
		if f.Active(j) {
			rows = append(rows, j)
		}
	}
	nrows := len(rows)
	if nrows == 0 {
		return 0
	}
	rowLo := func(r int) int { return r * nrows / px }
	rowHi := func(r int) int { return (r + 1) * nrows / px }
	xSeg := func(r int) int { return (r+1)*nx/px - r*nx/px }
	myLo, myHi := rowLo(rx.Rank()), rowHi(rx.Rank())

	send := make([][]float64, px)
	recv := make([][]float64, px)
	for r := 0; r < px; r++ {
		cnt := rowHi(r) - rowLo(r)
		send[r] = make([]float64, cnt*nxLoc)
		for q := rowLo(r); q < rowHi(r); q++ {
			base := fld.Index(b.I0, rows[q])
			copy(send[r][(q-rowLo(r))*nxLoc:], fld.Data[base:base+nxLoc])
		}
		recv[r] = make([]float64, (myHi-myLo)*xSeg(r))
	}
	rx.Alltoall(send, recv)

	full := make([][]float64, myHi-myLo)
	for q := range full {
		full[q] = make([]float64, nx)
	}
	for r := 0; r < px; r++ {
		i0 := r * nx / px
		segLen := xSeg(r)
		for q := myLo; q < myHi; q++ {
			copy(full[q-myLo][i0:i0+segLen], recv[r][(q-myLo)*segLen:])
		}
	}
	for q := myLo; q < myHi; q++ {
		f.FilterRow(full[q-myLo], rows[q])
	}
	for r := 0; r < px; r++ {
		i0 := r * nx / px
		segLen := xSeg(r)
		send[r] = make([]float64, (myHi-myLo)*segLen)
		for q := myLo; q < myHi; q++ {
			copy(send[r][(q-myLo)*segLen:], full[q-myLo][i0:i0+segLen])
		}
		recv[r] = make([]float64, (rowHi(r)-rowLo(r))*nxLoc)
	}
	rx.Alltoall(send, recv)
	for r := 0; r < px; r++ {
		for q := rowLo(r); q < rowHi(r); q++ {
			base := fld.Index(b.I0, rows[q])
			copy(fld.Data[base:base+nxLoc], recv[r][(q-rowLo(r))*nxLoc:(q-rowLo(r))*nxLoc+nxLoc])
		}
	}
	return myHi - myLo
}
