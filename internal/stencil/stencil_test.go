package stencil

import "testing"

func TestTableRadii(t *testing.T) {
	// The radii the paper's tables imply, which size every halo.
	if r := RadiusOf(Adaptation); r != (Radius{X: 3, Y: 1, Z: 1}) {
		t.Errorf("adaptation radius = %+v, want {3 1 1}", r)
	}
	if r := RadiusOf(Advection); r != (Radius{X: 3, Y: 1, Z: 1}) {
		t.Errorf("advection radius = %+v, want {3 1 1}", r)
	}
	if r := RadiusOf(Smoothing); r != (Radius{X: 2, Y: 2, Z: 0}) {
		t.Errorf("smoothing radius = %+v, want {2 2 0}", r)
	}
}

func TestTableShapes(t *testing.T) {
	if len(Adaptation) != 11 {
		t.Errorf("Table 1 has %d terms, want 11", len(Adaptation))
	}
	if len(Advection) != 9 {
		t.Errorf("Table 2 has %d terms, want 9", len(Advection))
	}
	if len(Smoothing) != 2 {
		t.Errorf("Table 3 has %d terms, want 2", len(Smoothing))
	}
	for _, tbl := range [][]Term{Adaptation, Advection, Smoothing} {
		for _, term := range tbl {
			if len(term.X) == 0 || len(term.Y) == 0 || len(term.Z) == 0 {
				t.Errorf("term %q has an empty direction", term.Name)
			}
			// Every term must include the center point in each direction.
			if !containsInt(term.X, 0) || !containsInt(term.Y, 0) || !containsInt(term.Z, 0) {
				t.Errorf("term %q does not read its own point", term.Name)
			}
		}
	}
}

func TestUnionAndScale(t *testing.T) {
	u := Union(Radius{X: 1, Y: 2, Z: 0}, Radius{X: 3, Y: 0, Z: 1})
	if u != (Radius{X: 3, Y: 2, Z: 1}) {
		t.Errorf("union = %+v", u)
	}
	if s := u.Scale(3); s != (Radius{X: 9, Y: 6, Z: 3}) {
		t.Errorf("scale = %+v", s)
	}
	if a := u.Add(Radius{X: 1, Y: 1, Z: 1}); a != (Radius{X: 4, Y: 3, Z: 2}) {
		t.Errorf("add = %+v", a)
	}
}

func TestContains(t *testing.T) {
	if !Contains(Adaptation, -3, 0, 0) { // Ω_λ⁽²⁾ reads i−3
		t.Error("adaptation should contain (−3,0,0)")
	}
	if Contains(Adaptation, 0, 2, 0) {
		t.Error("adaptation should not contain (0,2,0)")
	}
	if !Contains(Smoothing, 2, 2, 0) {
		t.Error("smoothing should contain (2,2,0)")
	}
	if Contains(Smoothing, 0, 0, 1) {
		t.Error("smoothing should not touch z")
	}
}

func TestBoxContains(t *testing.T) {
	if !BoxContains(Advection, 3, 1, 1) {
		t.Error("advection box must contain its corner")
	}
	if BoxContains(Advection, 4, 0, 0) || BoxContains(Advection, 0, 2, 0) || BoxContains(Advection, 0, 0, 2) {
		t.Error("advection box too large")
	}
}

func TestDeepHaloArithmetic(t *testing.T) {
	// Section 4.3.1: one exchange must cover 3M stencil updates; with the
	// y/z radii of 1 this is 3M layers, plus 2 smoothing layers in y
	// (Section 4.3.2).
	const m = 3
	r := Union(RadiusOf(Adaptation), RadiusOf(Advection))
	deep := r.Scale(3 * m).Add(Radius{Y: RadiusOf(Smoothing).Y})
	if deep.Y != 11 || deep.Z != 9 {
		t.Errorf("deep halo for M=3: %+v, want Y=11 Z=9", deep)
	}
}
