// Package stencil encodes the stencil dependency tables of the paper
// (Tables 1, 2 and 3): for every term of the adaptation, advection and
// smoothing processes, the set of neighbor offsets its update reads in each
// direction. The communication layer derives halo depths from these tables,
// and the operator tests verify by point-perturbation probing that the
// implemented kernels stay inside the declared footprints (the property that
// makes the deep-halo scheme safe).
package stencil

// Term is one row of a dependency table: the named term reads, for the
// update of point (i, j, k), the offsets listed per direction (0 denotes i,
// +1 denotes i+1, …). The footprint is the Cartesian product X×Y×Z, which
// over-approximates the true dependency set exactly the way the paper's
// tables do.
type Term struct {
	Name string
	X    []int
	Y    []int
	Z    []int
}

// Table 1: stencil computation in the adaptation process (function Â).
var Adaptation = []Term{
	{Name: "P_lambda(1)", X: []int{0, 1, -1, -2}, Y: []int{0}, Z: []int{0, 1}},
	{Name: "P_lambda(2)", X: []int{0, 1, -1, -2}, Y: []int{0}, Z: []int{0}},
	{Name: "f*V", X: []int{0, -1}, Y: []int{0, -1}, Z: []int{0}},
	{Name: "P_theta(1)", X: []int{0}, Y: []int{0, 1}, Z: []int{0, 1}},
	{Name: "P_theta(2)", X: []int{0}, Y: []int{0, 1}, Z: []int{0}},
	{Name: "f*U", X: []int{0, 1}, Y: []int{0, 1}, Z: []int{0}},
	{Name: "Omega(1)", X: []int{0}, Y: []int{0}, Z: []int{0, 1}},
	{Name: "Omega_theta(2)", X: []int{0}, Y: []int{0, 1, -1}, Z: []int{0}},
	{Name: "Omega_lambda(2)", X: []int{0, 1, -1, -2, 3, -3}, Y: []int{0}, Z: []int{0}},
	{Name: "D(P)", X: []int{0, -1, 2, 3, -3}, Y: []int{0, -1}, Z: []int{0}},
	{Name: "D_sa", X: []int{0, 1, -1}, Y: []int{0, 1, -1}, Z: []int{0}},
}

// Table 2: stencil computation in the advection process (function L̃).
var Advection = []Term{
	{Name: "L1(U)", X: []int{0, 1, -1, 2, -2, 3, -3}, Y: []int{0}, Z: []int{0, 1}},
	{Name: "L2(U)", X: []int{0, -1}, Y: []int{0, 1, -1}, Z: []int{0}},
	{Name: "L3(U)", X: []int{0, -1}, Y: []int{0}, Z: []int{0, 1, -1}},
	{Name: "L1(V)", X: []int{0, 1, -1, 2, 3, -3}, Y: []int{0, 1}, Z: []int{0}},
	{Name: "L2(V)", X: []int{0}, Y: []int{0, 1, -1}, Z: []int{0}},
	{Name: "L3(V)", X: []int{0}, Y: []int{0, 1}, Z: []int{0, 1, -1}},
	{Name: "L1(Phi)", X: []int{0, 1, -1, 2, 3, -3}, Y: []int{0}, Z: []int{0}},
	{Name: "L2(Phi)", X: []int{0}, Y: []int{0, 1, -1}, Z: []int{0}},
	{Name: "L3(Phi)", X: []int{0}, Y: []int{0}, Z: []int{0, 1, -1}},
}

// Table 3: stencil computation in the smoothing S̃ (the fourth-difference
// operators δ⁴_λ, δ⁴_θ).
var Smoothing = []Term{
	{Name: "P1", X: []int{0, 1, -1, 2, -2}, Y: []int{0}, Z: []int{0}},
	{Name: "P2", X: []int{0, 1, -1, 2, -2}, Y: []int{0, 1, -1, 2, -2}, Z: []int{0}},
}

// Radius holds the maximum |offset| per direction of a set of terms; it is
// the halo depth one update of the process requires.
type Radius struct {
	X, Y, Z int
}

// RadiusOf computes the per-direction radius of a table.
func RadiusOf(terms []Term) Radius {
	var r Radius
	for _, t := range terms {
		for _, o := range t.X {
			r.X = maxAbs(r.X, o)
		}
		for _, o := range t.Y {
			r.Y = maxAbs(r.Y, o)
		}
		for _, o := range t.Z {
			r.Z = maxAbs(r.Z, o)
		}
	}
	return r
}

// Union returns the pointwise maximum of radii.
//
//cadyvet:allocfree
func Union(rs ...Radius) Radius {
	var u Radius
	for _, r := range rs {
		if r.X > u.X {
			u.X = r.X
		}
		if r.Y > u.Y {
			u.Y = r.Y
		}
		if r.Z > u.Z {
			u.Z = r.Z
		}
	}
	return u
}

// Scale multiplies every component by n: the halo depth needed for n
// back-to-back updates without communication (Section 4.3.1's 3M layers).
//
//cadyvet:allocfree
func (r Radius) Scale(n int) Radius {
	return Radius{X: r.X * n, Y: r.Y * n, Z: r.Z * n}
}

// Add sums two radii componentwise (e.g. adaptation depth + fused smoothing
// depth in Algorithm 2).
//
//cadyvet:allocfree
func (r Radius) Add(o Radius) Radius {
	return Radius{X: r.X + o.X, Y: r.Y + o.Y, Z: r.Z + o.Z}
}

func maxAbs(cur, o int) int {
	if o < 0 {
		o = -o
	}
	if o > cur {
		return o
	}
	return cur
}

// Contains reports whether offset (dx, dy, dz) lies inside the Cartesian
// footprint of any term in the table.
//
//cadyvet:allocfree
func Contains(terms []Term, dx, dy, dz int) bool {
	for _, t := range terms {
		if containsInt(t.X, dx) && containsInt(t.Y, dy) && containsInt(t.Z, dz) {
			return true
		}
	}
	return false
}

// BoxContains reports whether (dx, dy, dz) lies inside the bounding box of
// the table's radius — the criterion halo sizing actually relies on.
//
//cadyvet:allocfree
func BoxContains(terms []Term, dx, dy, dz int) bool {
	r := RadiusOf(terms)
	return abs(dx) <= r.X && abs(dy) <= r.Y && abs(dz) <= r.Z
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
