module cadycore

go 1.22
